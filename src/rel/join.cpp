#include "rel/join.h"

#include <unordered_map>

#include "rel/operators.h"

namespace temporadb {

Result<Rowset> NestedLoopJoin(const Rowset& a, const Rowset& b,
                              const Expr& pred) {
  TDB_ASSIGN_OR_RETURN(Rowset product, CrossProduct(a, b));
  return Select(product, pred);
}

namespace {

struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 1469598103934665603ULL;
    for (const Value& v : key) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace

Result<Rowset> HashEquiJoin(const Rowset& a, const Rowset& b,
                            const std::vector<size_t>& keys_a,
                            const std::vector<size_t>& keys_b) {
  if (keys_a.size() != keys_b.size() || keys_a.empty()) {
    return Status::InvalidArgument("equi-join key lists must match");
  }
  for (size_t k : keys_a) {
    if (k >= a.schema().size()) {
      return Status::InvalidArgument("left join key out of range");
    }
  }
  for (size_t k : keys_b) {
    if (k >= b.schema().size()) {
      return Status::InvalidArgument("right join key out of range");
    }
  }
  TemporalClass cls = MeetClass(a.temporal_class(), b.temporal_class());
  Rowset out(a.schema().Concat(b.schema()), cls);
  const bool want_valid = SupportsValidTime(cls);
  const bool want_txn = SupportsTransactionTime(cls);

  // Build on the smaller side.
  const bool build_left = a.size() <= b.size();
  const Rowset& build = build_left ? a : b;
  const Rowset& probe = build_left ? b : a;
  const std::vector<size_t>& build_keys = build_left ? keys_a : keys_b;
  const std::vector<size_t>& probe_keys = build_left ? keys_b : keys_a;

  std::unordered_map<std::vector<Value>, std::vector<const Row*>, KeyHash>
      table;
  for (const Row& row : build.rows()) {
    std::vector<Value> key;
    key.reserve(build_keys.size());
    for (size_t k : build_keys) key.push_back(row.values[k]);
    table[std::move(key)].push_back(&row);
  }

  for (const Row& probe_row : probe.rows()) {
    std::vector<Value> key;
    key.reserve(probe_keys.size());
    for (size_t k : probe_keys) key.push_back(probe_row.values[k]);
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (const Row* build_row : it->second) {
      const Row& left = build_left ? *build_row : probe_row;
      const Row& right = build_left ? probe_row : *build_row;
      Row combined;
      if (want_valid) {
        Period v = left.valid->Intersect(*right.valid);
        if (v.IsEmpty()) continue;
        combined.valid = v;
      }
      if (want_txn) {
        Period t = left.txn->Intersect(*right.txn);
        if (t.IsEmpty()) continue;
        combined.txn = t;
      }
      combined.values = left.values;
      combined.values.insert(combined.values.end(), right.values.begin(),
                             right.values.end());
      TDB_RETURN_IF_ERROR(out.AddRow(std::move(combined)));
    }
  }
  return out;
}

}  // namespace temporadb
