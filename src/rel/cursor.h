#ifndef TEMPORADB_REL_CURSOR_H_
#define TEMPORADB_REL_CURSOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rel/expression.h"
#include "rel/relation.h"

namespace temporadb {

/// A pull-based (Volcano-style) row stream: the unit of composition of the
/// streaming executor.
///
/// Life cycle: construct, `Open()` once, then `Next()` until it yields
/// nullopt.  Schema, temporal class, and data model are only guaranteed to
/// be final after `Open()` (projection infers output types from its first
/// input row, exactly as the materializing `Project` always has).
///
/// Cursors *borrow* their inputs — source rowsets, expressions, and child
/// cursors they do not own must outlive them.  The materializing operator
/// functions in `rel/operators.h` are thin wrappers that build a cursor
/// tree over their argument rowsets and drain it; callers that want
/// streaming build the tree themselves and pull.
class RowCursor {
 public:
  virtual ~RowCursor() = default;

  /// Prepares the cursor (and its children) for pulling; validates operand
  /// compatibility and resolves the output schema.  Must be called exactly
  /// once, before `Next()` or the shape accessors.
  virtual Status Open() = 0;

  /// The next row, or nullopt when the stream is exhausted.
  virtual Result<std::optional<Row>> Next() = 0;

  /// Output shape; valid after `Open()` succeeded.
  virtual const Schema& schema() const = 0;
  virtual TemporalClass temporal_class() const = 0;
  virtual TemporalDataModel data_model() const = 0;
};

using RowCursorPtr = std::unique_ptr<RowCursor>;

/// Source: streams the rows of a materialized rowset (borrowed).
RowCursorPtr MakeRowsetCursor(const Rowset* input);

/// Rows for which `pred` (borrowed) evaluates to true.
RowCursorPtr MakeSelectCursor(RowCursorPtr input, const Expr* pred);

/// One output column per expression; output types are inferred from the
/// first input row (string for an empty input).  `exprs` is borrowed.
RowCursorPtr MakeProjectCursor(RowCursorPtr input,
                               const std::vector<ExprPtr>* exprs,
                               std::vector<std::string> names);

/// Bag union; schemas and temporal classes must agree (checked at Open).
RowCursorPtr MakeUnionCursor(RowCursorPtr a, RowCursorPtr b);

/// Rows of `a` not present in `b`; `b` is drained and hashed at Open.
RowCursorPtr MakeDifferenceCursor(RowCursorPtr a, RowCursorPtr b);

/// Streaming duplicate elimination (full-row equality).
RowCursorPtr MakeDistinctCursor(RowCursorPtr input);

/// Sort by the given column indexes ascending; a pipeline breaker (drains
/// its input at Open, then streams the sorted buffer).
RowCursorPtr MakeSortCursor(RowCursorPtr input, std::vector<size_t> keys);

/// Cartesian product in the meet class; the inner operand `b` is drained
/// and buffered at Open, `a` streams.  Pairs whose periods do not intersect
/// in a maintained dimension are dropped; operand classes without a meet
/// (rollback x historical) are rejected at Open.
RowCursorPtr MakeCrossProductCursor(RowCursorPtr a, RowCursorPtr b);

/// Drains a cursor into a rowset (Open + Next loop).
Result<Rowset> MaterializeCursor(RowCursor* cursor);

}  // namespace temporadb

#endif  // TEMPORADB_REL_CURSOR_H_
