#ifndef TEMPORADB_REL_CURSOR_H_
#define TEMPORADB_REL_CURSOR_H_

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rel/expression.h"
#include "rel/relation.h"

namespace temporadb {

/// A pull-based (Volcano-style) row stream: the retained row-at-a-time
/// executor interface (the vectorized contract is `BatchCursor` in
/// rel/batch_cursor.h; adapters convert between the two).
///
/// Life cycle: construct, call `Open()` exactly once, and only if it
/// returned OK pull `Next()` until it yields nullopt.  The shape accessors
/// (`schema()`/`temporal_class()`/`data_model()`) are only valid after a
/// successful `Open()` — projection, for example, infers its output types
/// from the first input row, so an unopened cursor has no schema to
/// report.  A cursor whose `Open()` failed is dead: the only valid
/// operation left is destruction.  These rules are enforced with debug
/// asserts (the interface is non-virtual over protected `*Impl` hooks so
/// every implementation inherits the checks); in release builds a
/// violation remains undefined behavior.
///
/// Cursors *borrow* their inputs — source rowsets, expressions, and child
/// cursors they do not own must outlive them.  The materializing operator
/// functions in `rel/operators.h` are thin wrappers that build a cursor
/// tree over their argument rowsets and drain it; callers that want
/// streaming build the tree themselves and pull.
///
/// Threading: a cursor tree lives on one thread; it is the stream, not
/// the storage, that is single-threaded.  Snapshot readers each build
/// their own private tree over pinned storage (`ScanSpec::snapshot`), so
/// any number of trees may pull concurrently as long as no two threads
/// share one cursor.
class RowCursor {
 public:
  virtual ~RowCursor() = default;

  /// Prepares the cursor (and its children) for pulling; validates operand
  /// compatibility and resolves the output schema.  Must be called exactly
  /// once, before `Next()` or the shape accessors (debug-asserted).
  Status Open() {
    assert(!opened_ && "RowCursor::Open() called twice");
    opened_ = true;
    return OpenImpl();
  }

  /// The next row, or nullopt when the stream is exhausted.
  Result<std::optional<Row>> Next() {
    assert(opened_ && "RowCursor::Next() before Open()");
    return NextImpl();
  }

  /// Output shape; valid after `Open()` succeeded.
  const Schema& schema() const {
    assert(opened_ && "RowCursor::schema() before Open()");
    return SchemaImpl();
  }
  TemporalClass temporal_class() const {
    assert(opened_ && "RowCursor::temporal_class() before Open()");
    return TemporalClassImpl();
  }
  TemporalDataModel data_model() const {
    assert(opened_ && "RowCursor::data_model() before Open()");
    return DataModelImpl();
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<std::optional<Row>> NextImpl() = 0;
  virtual const Schema& SchemaImpl() const = 0;
  virtual TemporalClass TemporalClassImpl() const = 0;
  virtual TemporalDataModel DataModelImpl() const = 0;

 private:
  bool opened_ = false;
};

using RowCursorPtr = std::unique_ptr<RowCursor>;

/// Source: streams the rows of a materialized rowset (borrowed).
RowCursorPtr MakeRowsetCursor(const Rowset* input);

/// Rows for which `pred` (borrowed) evaluates to true.
RowCursorPtr MakeSelectCursor(RowCursorPtr input, const Expr* pred);

/// One output column per expression; output types are inferred from the
/// first input row (string for an empty input).  `exprs` is borrowed.
RowCursorPtr MakeProjectCursor(RowCursorPtr input,
                               const std::vector<ExprPtr>* exprs,
                               std::vector<std::string> names);

/// Bag union; schemas and temporal classes must agree (checked at Open).
RowCursorPtr MakeUnionCursor(RowCursorPtr a, RowCursorPtr b);

/// Rows of `a` not present in `b`; `b` is drained and hashed at Open.
RowCursorPtr MakeDifferenceCursor(RowCursorPtr a, RowCursorPtr b);

/// Streaming duplicate elimination (full-row equality).
RowCursorPtr MakeDistinctCursor(RowCursorPtr input);

/// Sort by the given column indexes ascending; a pipeline breaker (drains
/// its input at Open, then streams the sorted buffer).
RowCursorPtr MakeSortCursor(RowCursorPtr input, std::vector<size_t> keys);

/// Cartesian product in the meet class; the inner operand `b` is drained
/// and buffered at Open, `a` streams.  Pairs whose periods do not intersect
/// in a maintained dimension are dropped; operand classes without a meet
/// (rollback x historical) are rejected at Open.
RowCursorPtr MakeCrossProductCursor(RowCursorPtr a, RowCursorPtr b);

/// Drains a cursor into a rowset (Open + Next loop).
Result<Rowset> MaterializeCursor(RowCursor* cursor);

}  // namespace temporadb

#endif  // TEMPORADB_REL_CURSOR_H_
