#include "rel/batch_cursor.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/strings.h"
#include "rel/kernels.h"

namespace temporadb {

namespace {

// Copies row `i`'s explicit values into `scratch` (reused across rows) for
// expression evaluation — the columnar layout is transposed back only at
// the expression boundary, not per operator.
void GatherValues(const Batch& b, size_t i, std::vector<Value>* scratch) {
  scratch->clear();
  scratch->reserve(b.width());
  for (size_t c = 0; c < b.width(); ++c) scratch->push_back(b.columns[c][i]);
}

class RowsetBatchCursor final : public BatchCursor {
 public:
  RowsetBatchCursor(const Rowset* input, size_t batch_rows)
      : input_(input), batch_rows_(batch_rows) {}

  Status OpenImpl() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Batch>> NextBatchImpl() override {
    const std::vector<Row>& rows = input_->rows();
    if (pos_ >= rows.size()) return std::optional<Batch>();
    Batch out(input_->schema().size(), input_->has_valid_time(),
              input_->has_txn_time());
    const size_t end = std::min(rows.size(), pos_ + batch_rows_);
    out.ReserveRows(end - pos_);
    for (; pos_ < end; ++pos_) out.AppendRow(rows[pos_]);
    return std::optional<Batch>(std::move(out));
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  const Rowset* input_;
  size_t batch_rows_;
  size_t pos_ = 0;
};

class BatchSelectCursor final : public BatchCursor {
 public:
  BatchSelectCursor(BatchCursorPtr input, const Expr* pred)
      : input_(std::move(input)), pred_(pred) {}

  Status OpenImpl() override { return input_->Open(); }

  Result<std::optional<Batch>> NextBatchImpl() override {
    std::vector<Value> scratch;
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->NextBatch());
      if (!batch.has_value()) return batch;
      // Arbitrary predicates stay row-at-a-time (they may touch any value
      // type); survivors are compacted in place, in row order, so errors
      // surface exactly where the row path would raise them.
      SelectionVector sel;
      sel.reserve(batch->rows());
      for (size_t i = 0; i < batch->rows(); ++i) {
        GatherValues(*batch, i, &scratch);
        TDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*pred_, scratch));
        if (keep) sel.push_back(static_cast<uint32_t>(i));
      }
      if (sel.empty()) continue;
      batch->Compact(sel, sel.size());
      return batch;
    }
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  BatchCursorPtr input_;
  const Expr* pred_;
};

class BatchProjectCursor final : public BatchCursor {
 public:
  BatchProjectCursor(BatchCursorPtr input, const std::vector<ExprPtr>* exprs,
                     std::vector<std::string> names)
      : input_(std::move(input)), exprs_(exprs), names_(std::move(names)) {}

  Status OpenImpl() override {
    if (exprs_->size() != names_.size()) {
      return Status::InvalidArgument("projection names/expressions mismatch");
    }
    TDB_RETURN_IF_ERROR(input_->Open());
    // Output attribute types: inferred from the first row, defaulting to
    // string for empty inputs — same lookahead the row path performs, one
    // batch at a time instead of one row.
    TDB_ASSIGN_OR_RETURN(lookahead_, input_->NextBatch());
    std::vector<Attribute> attrs;
    attrs.reserve(exprs_->size());
    std::vector<Value> scratch;
    if (lookahead_.has_value()) GatherValues(*lookahead_, 0, &scratch);
    for (size_t i = 0; i < exprs_->size(); ++i) {
      ValueType vt = ValueType::kString;
      if (lookahead_.has_value()) {
        TDB_ASSIGN_OR_RETURN(Value v, (*exprs_)[i]->Eval(scratch));
        if (!v.is_null()) vt = v.type();
      }
      attrs.push_back(Attribute{names_[i], Type(vt)});
    }
    TDB_ASSIGN_OR_RETURN(schema_, Schema::Make(std::move(attrs)));
    return Status::OK();
  }

  Result<std::optional<Batch>> NextBatchImpl() override {
    std::optional<Batch> batch;
    if (lookahead_.has_value()) {
      batch = std::move(lookahead_);
      lookahead_.reset();
    } else {
      TDB_ASSIGN_OR_RETURN(batch, input_->NextBatch());
    }
    if (!batch.has_value()) return batch;
    Batch out(exprs_->size(), batch->has_valid, batch->has_txn);
    out.ReserveRows(batch->rows());
    // Row-major evaluation: the first expression error is the same one the
    // row-at-a-time path reports.
    std::vector<Value> scratch;
    for (size_t i = 0; i < batch->rows(); ++i) {
      GatherValues(*batch, i, &scratch);
      for (size_t e = 0; e < exprs_->size(); ++e) {
        TDB_ASSIGN_OR_RETURN(Value v, (*exprs_)[e]->Eval(scratch));
        out.columns[e].push_back(std::move(v));
      }
    }
    // Projection keeps the DBMS-maintained periods untouched.
    out.valid_from = std::move(batch->valid_from);
    out.valid_to = std::move(batch->valid_to);
    out.tt_start = std::move(batch->tt_start);
    out.tt_end = std::move(batch->tt_end);
    out.SetRowCount(batch->rows());
    return std::optional<Batch>(std::move(out));
  }

  const Schema& SchemaImpl() const override { return schema_; }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  BatchCursorPtr input_;
  const std::vector<ExprPtr>* exprs_;
  std::vector<std::string> names_;
  std::optional<Batch> lookahead_;
  Schema schema_;
};

class BatchUnionCursor final : public BatchCursor {
 public:
  BatchUnionCursor(BatchCursorPtr a, BatchCursorPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(a_->Open());
    TDB_RETURN_IF_ERROR(b_->Open());
    if (a_->schema() != b_->schema()) {
      return Status::InvalidArgument("union of incompatible schemas");
    }
    if (a_->temporal_class() != b_->temporal_class()) {
      return Status::InvalidArgument(StringPrintf(
          "union of %s and %s relations",
          std::string(TemporalClassName(a_->temporal_class())).c_str(),
          std::string(TemporalClassName(b_->temporal_class())).c_str()));
    }
    return Status::OK();
  }

  Result<std::optional<Batch>> NextBatchImpl() override {
    if (!a_done_) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, a_->NextBatch());
      if (batch.has_value()) return batch;
      a_done_ = true;
    }
    return b_->NextBatch();
  }

  const Schema& SchemaImpl() const override { return a_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return a_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override { return a_->data_model(); }

 private:
  BatchCursorPtr a_;
  BatchCursorPtr b_;
  bool a_done_ = false;
};

class BatchDifferenceCursor final : public BatchCursor {
 public:
  BatchDifferenceCursor(BatchCursorPtr a, BatchCursorPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(a_->Open());
    TDB_RETURN_IF_ERROR(b_->Open());
    if (a_->schema() != b_->schema() ||
        a_->temporal_class() != b_->temporal_class()) {
      return Status::InvalidArgument("difference of incompatible relations");
    }
    // Pipeline breaker on the excluded side only: `b` is drained into a
    // set, `a` streams through.
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, b_->NextBatch());
      if (!batch.has_value()) break;
      for (size_t i = 0; i < batch->rows(); ++i) {
        exclude_.insert(batch->ExtractRow(i));
      }
    }
    return Status::OK();
  }

  Result<std::optional<Batch>> NextBatchImpl() override {
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, a_->NextBatch());
      if (!batch.has_value()) return batch;
      SelectionVector sel;
      sel.reserve(batch->rows());
      for (size_t i = 0; i < batch->rows(); ++i) {
        if (!exclude_.contains(batch->ExtractRow(i))) {
          sel.push_back(static_cast<uint32_t>(i));
        }
      }
      if (sel.empty()) continue;
      batch->Compact(sel, sel.size());
      return batch;
    }
  }

  const Schema& SchemaImpl() const override { return a_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return a_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override { return a_->data_model(); }

 private:
  BatchCursorPtr a_;
  BatchCursorPtr b_;
  std::set<Row> exclude_;
};

class BatchDistinctCursor final : public BatchCursor {
 public:
  explicit BatchDistinctCursor(BatchCursorPtr input)
      : input_(std::move(input)) {}

  Status OpenImpl() override { return input_->Open(); }

  Result<std::optional<Batch>> NextBatchImpl() override {
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->NextBatch());
      if (!batch.has_value()) return batch;
      SelectionVector sel;
      sel.reserve(batch->rows());
      for (size_t i = 0; i < batch->rows(); ++i) {
        if (seen_.insert(batch->ExtractRow(i)).second) {
          sel.push_back(static_cast<uint32_t>(i));
        }
      }
      if (sel.empty()) continue;
      batch->Compact(sel, sel.size());
      return batch;
    }
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  BatchCursorPtr input_;
  std::set<Row> seen_;
};

class BatchSortCursor final : public BatchCursor {
 public:
  BatchSortCursor(BatchCursorPtr input, std::vector<size_t> keys)
      : input_(std::move(input)), keys_(std::move(keys)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(input_->Open());
    for (size_t k : keys_) {
      if (k >= input_->schema().size()) {
        return Status::InvalidArgument("sort key index out of range");
      }
    }
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, input_->NextBatch());
      if (!batch.has_value()) break;
      for (size_t i = 0; i < batch->rows(); ++i) {
        rows_.push_back(batch->ExtractRow(i));
      }
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (size_t k : keys_) {
                         if (a.values[k] < b.values[k]) return true;
                         if (b.values[k] < a.values[k]) return false;
                       }
                       return a < b;
                     });
    return Status::OK();
  }

  Result<std::optional<Batch>> NextBatchImpl() override {
    if (pos_ >= rows_.size()) return std::optional<Batch>();
    Batch out(input_->schema().size(),
              SupportsValidTime(input_->temporal_class()),
              SupportsTransactionTime(input_->temporal_class()));
    const size_t end = std::min(rows_.size(), pos_ + kDefaultBatchRows);
    out.ReserveRows(end - pos_);
    for (; pos_ < end; ++pos_) out.AppendRow(rows_[pos_]);
    return std::optional<Batch>(std::move(out));
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  BatchCursorPtr input_;
  std::vector<size_t> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class BatchCrossProductCursor final : public BatchCursor {
 public:
  BatchCrossProductCursor(BatchCursorPtr a, BatchCursorPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(a_->Open());
    TDB_RETURN_IF_ERROR(b_->Open());
    if (!HasMeetClass(a_->temporal_class(), b_->temporal_class())) {
      return Status::InvalidArgument(StringPrintf(
          "cross product of %s and %s relations: the temporal classes have "
          "no meet (one maintains only transaction time, the other only "
          "valid time), so every pairing would silently drop both time "
          "dimensions",
          std::string(TemporalClassName(a_->temporal_class())).c_str(),
          std::string(TemporalClassName(b_->temporal_class())).c_str()));
    }
    class_ = MeetClass(a_->temporal_class(), b_->temporal_class());
    want_valid_ = SupportsValidTime(class_);
    want_txn_ = SupportsTransactionTime(class_);
    schema_ = a_->schema().Concat(b_->schema());
    // Pipeline breaker on the inner side: `b` is buffered into one columnar
    // block so each outer row intersects against contiguous chronon columns.
    inner_ = Batch(b_->schema().size(),
                   SupportsValidTime(b_->temporal_class()),
                   SupportsTransactionTime(b_->temporal_class()));
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, b_->NextBatch());
      if (!batch.has_value()) break;
      for (size_t i = 0; i < batch->rows(); ++i) {
        inner_.AppendRowFrom(*batch, i);
      }
    }
    return Status::OK();
  }

  Result<std::optional<Batch>> NextBatchImpl() override {
    const size_t n_inner = inner_.rows();
    sel_.resize(n_inner);
    if (want_valid_) {
      out_vb_.resize(n_inner);
      out_ve_.resize(n_inner);
    }
    if (want_txn_) {
      out_tb_.resize(n_inner);
      out_te_.resize(n_inner);
    }
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Batch> outer, a_->NextBatch());
      if (!outer.has_value()) return std::optional<Batch>();
      Batch out(schema_.size(), want_valid_, want_txn_);
      const size_t a_width = a_->schema().size();
      size_t count = 0;
      for (size_t i = 0; i < outer->rows(); ++i) {
        // One kernel pass intersects this outer row's periods against the
        // whole inner side; pairs survive exactly when the row path's
        // `Intersect` + empty check would keep them (same pair order:
        // outer row, then inner rows ascending).
        size_t n_pairs;
        if (want_valid_ && want_txn_) {
          n_pairs = kernels::IntersectBitemporal(
              inner_.valid_from.data(), inner_.valid_to.data(),
              inner_.tt_start.data(), inner_.tt_end.data(),
              /*sel_in=*/nullptr, n_inner, outer->valid_from[i],
              outer->valid_to[i], outer->tt_start[i], outer->tt_end[i],
              sel_.data(), out_vb_.data(), out_ve_.data(), out_tb_.data(),
              out_te_.data());
        } else if (want_valid_) {
          n_pairs = kernels::IntersectPeriods(
              inner_.valid_from.data(), inner_.valid_to.data(),
              /*sel_in=*/nullptr, n_inner, outer->valid_from[i],
              outer->valid_to[i], sel_.data(), out_vb_.data(),
              out_ve_.data());
        } else if (want_txn_) {
          n_pairs = kernels::IntersectPeriods(
              inner_.tt_start.data(), inner_.tt_end.data(),
              /*sel_in=*/nullptr, n_inner, outer->tt_start[i],
              outer->tt_end[i], sel_.data(), out_tb_.data(), out_te_.data());
        } else {
          // No maintained dimension (static x static): every pair survives.
          n_pairs = n_inner;
          for (size_t k = 0; k < n_inner; ++k) {
            sel_[k] = static_cast<uint32_t>(k);
          }
        }
        for (size_t k = 0; k < n_pairs; ++k) {
          const uint32_t j = sel_[k];
          for (size_t c = 0; c < a_width; ++c) {
            out.columns[c].push_back(outer->columns[c][i]);
          }
          for (size_t c = 0; c < inner_.width(); ++c) {
            out.columns[a_width + c].push_back(inner_.columns[c][j]);
          }
          if (want_valid_) {
            out.valid_from.push_back(out_vb_[k]);
            out.valid_to.push_back(out_ve_[k]);
          }
          if (want_txn_) {
            out.tt_start.push_back(out_tb_[k]);
            out.tt_end.push_back(out_te_[k]);
          }
          ++count;
        }
      }
      if (count == 0) continue;
      out.SetRowCount(count);
      return std::optional<Batch>(std::move(out));
    }
  }

  const Schema& SchemaImpl() const override { return schema_; }
  TemporalClass TemporalClassImpl() const override { return class_; }
  // Matches the materializing operator: the product is rebuilt as an
  // interval rowset regardless of the operands' models.
  TemporalDataModel DataModelImpl() const override {
    return TemporalDataModel::kInterval;
  }

 private:
  BatchCursorPtr a_;
  BatchCursorPtr b_;
  Schema schema_;
  TemporalClass class_ = TemporalClass::kStatic;
  bool want_valid_ = false;
  bool want_txn_ = false;
  Batch inner_;
  SelectionVector sel_;
  ChrononColumn out_vb_, out_ve_, out_tb_, out_te_;
};

class RowCursorOverBatches final : public RowCursor {
 public:
  explicit RowCursorOverBatches(BatchCursorPtr input)
      : input_(std::move(input)) {}

  Status OpenImpl() override { return input_->Open(); }

  Result<std::optional<Row>> NextImpl() override {
    while (!cur_.has_value() || pos_ >= cur_->rows()) {
      TDB_ASSIGN_OR_RETURN(cur_, input_->NextBatch());
      if (!cur_.has_value()) return std::optional<Row>();
      pos_ = 0;
    }
    return std::optional<Row>(cur_->ExtractRow(pos_++));
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  BatchCursorPtr input_;
  std::optional<Batch> cur_;
  size_t pos_ = 0;
};

class BatchCursorOverRows final : public BatchCursor {
 public:
  BatchCursorOverRows(RowCursorPtr input, size_t batch_rows)
      : input_(std::move(input)), batch_rows_(batch_rows) {}

  Status OpenImpl() override { return input_->Open(); }

  Result<std::optional<Batch>> NextBatchImpl() override {
    Batch out(input_->schema().size(),
              SupportsValidTime(input_->temporal_class()),
              SupportsTransactionTime(input_->temporal_class()));
    out.ReserveRows(batch_rows_);
    while (out.rows() < batch_rows_) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
      if (!row.has_value()) break;
      out.AppendRow(*row);
    }
    if (out.empty()) return std::optional<Batch>();
    return std::optional<Batch>(std::move(out));
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  RowCursorPtr input_;
  size_t batch_rows_;
};

}  // namespace

BatchCursorPtr MakeRowsetBatchCursor(const Rowset* input, size_t batch_rows) {
  return std::make_unique<RowsetBatchCursor>(input, batch_rows);
}

BatchCursorPtr MakeBatchSelectCursor(BatchCursorPtr input, const Expr* pred) {
  return std::make_unique<BatchSelectCursor>(std::move(input), pred);
}

BatchCursorPtr MakeBatchProjectCursor(BatchCursorPtr input,
                                      const std::vector<ExprPtr>* exprs,
                                      std::vector<std::string> names) {
  return std::make_unique<BatchProjectCursor>(std::move(input), exprs,
                                              std::move(names));
}

BatchCursorPtr MakeBatchUnionCursor(BatchCursorPtr a, BatchCursorPtr b) {
  return std::make_unique<BatchUnionCursor>(std::move(a), std::move(b));
}

BatchCursorPtr MakeBatchDifferenceCursor(BatchCursorPtr a, BatchCursorPtr b) {
  return std::make_unique<BatchDifferenceCursor>(std::move(a), std::move(b));
}

BatchCursorPtr MakeBatchDistinctCursor(BatchCursorPtr input) {
  return std::make_unique<BatchDistinctCursor>(std::move(input));
}

BatchCursorPtr MakeBatchSortCursor(BatchCursorPtr input,
                                   std::vector<size_t> keys) {
  return std::make_unique<BatchSortCursor>(std::move(input), std::move(keys));
}

BatchCursorPtr MakeBatchCrossProductCursor(BatchCursorPtr a,
                                           BatchCursorPtr b) {
  return std::make_unique<BatchCrossProductCursor>(std::move(a), std::move(b));
}

RowCursorPtr MakeRowCursorOverBatches(BatchCursorPtr input) {
  return std::make_unique<RowCursorOverBatches>(std::move(input));
}

BatchCursorPtr MakeBatchCursorOverRows(RowCursorPtr input, size_t batch_rows) {
  return std::make_unique<BatchCursorOverRows>(std::move(input), batch_rows);
}

Result<Rowset> MaterializeBatchCursor(BatchCursor* cursor) {
  TDB_RETURN_IF_ERROR(cursor->Open());
  Rowset out(cursor->schema(), cursor->temporal_class(),
             cursor->data_model());
  while (true) {
    TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, cursor->NextBatch());
    if (!batch.has_value()) break;
    for (size_t i = 0; i < batch->rows(); ++i) {
      TDB_RETURN_IF_ERROR(out.AddRow(batch->ExtractRow(i)));
    }
  }
  return out;
}

}  // namespace temporadb
