#include "rel/relation.h"

#include <algorithm>

#include "common/strings.h"
#include "common/table_printer.h"

namespace temporadb {

Status Rowset::AddRow(Row row) {
  if (row.values.size() != schema_.size()) {
    return Status::InvalidArgument(StringPrintf(
        "row arity %zu does not match schema arity %zu", row.values.size(),
        schema_.size()));
  }
  if (has_valid_time() != row.valid.has_value()) {
    return Status::InvalidArgument(
        has_valid_time()
            ? "row lacks a valid period in a relation with valid time"
            : "row carries a valid period in a relation without valid time");
  }
  if (has_txn_time() != row.txn.has_value()) {
    return Status::InvalidArgument(
        has_txn_time()
            ? "row lacks a transaction period in a relation with "
              "transaction time"
            : "row carries a transaction period in a relation without "
              "transaction time");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string Rowset::Render(const std::string& title) const {
  TablePrinter printer;
  for (const Attribute& attr : schema_.attributes()) {
    printer.AddColumn(attr.name);
  }
  const bool event = data_model_ == TemporalDataModel::kEvent;
  if (has_valid_time()) {
    if (event) {
      printer.AddGroup("valid time", {"(at)"});
    } else {
      printer.AddGroup("valid time", {"(from)", "(to)"});
    }
  }
  if (has_txn_time()) {
    printer.AddGroup("transaction time", {"(start)", "(end)"});
  }
  for (const Row& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.values.size() + 4);
    for (const Value& v : row.values) cells.push_back(v.ToString());
    if (has_valid_time()) {
      if (event) {
        cells.push_back(row.valid->begin().ToString());
      } else {
        cells.push_back(row.valid->begin().ToString());
        cells.push_back(row.valid->end().ToString());
      }
    }
    if (has_txn_time()) {
      cells.push_back(row.txn->begin().ToString());
      cells.push_back(row.txn->end().ToString());
    }
    printer.AddRow(std::move(cells));
  }
  return printer.Render(title);
}

bool Rowset::SameContent(const Rowset& a, const Rowset& b) {
  if (a.schema() != b.schema()) return false;
  if (a.temporal_class() != b.temporal_class()) return false;
  if (a.size() != b.size()) return false;
  std::vector<Row> ra = a.rows_;
  std::vector<Row> rb = b.rows_;
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  return ra == rb;
}

}  // namespace temporadb
