#include "rel/kernels.h"

namespace temporadb {
namespace kernels {

// Every loop body computes `keep` as an integer 0/1 from comparisons and
// advances the output cursor by it — the store to `sel_out[count]` is
// unconditional, so there is no data-dependent branch for the predictor to
// miss.  Surviving order is ascending by construction.

size_t SelectOverlaps(const int64_t* begin, const int64_t* end, size_t n,
                      int64_t q_begin, int64_t q_end, uint32_t* sel_out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const unsigned keep = static_cast<unsigned>(begin[i] < q_end) &
                          static_cast<unsigned>(q_begin < end[i]) &
                          static_cast<unsigned>(begin[i] < end[i]);
    sel_out[count] = static_cast<uint32_t>(i);
    count += keep;
  }
  return count;
}

size_t SelectOverlapsRefine(const int64_t* begin, const int64_t* end,
                            const uint32_t* sel_in, size_t n_in,
                            int64_t q_begin, int64_t q_end,
                            uint32_t* sel_out) {
  size_t count = 0;
  for (size_t k = 0; k < n_in; ++k) {
    const uint32_t i = sel_in[k];
    const unsigned keep = static_cast<unsigned>(begin[i] < q_end) &
                          static_cast<unsigned>(q_begin < end[i]) &
                          static_cast<unsigned>(begin[i] < end[i]);
    sel_out[count] = i;
    count += keep;
  }
  return count;
}

size_t SelectContains(const int64_t* begin, const int64_t* end, size_t n,
                      int64_t t, uint32_t* sel_out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const unsigned keep = static_cast<unsigned>(begin[i] <= t) &
                          static_cast<unsigned>(t < end[i]);
    sel_out[count] = static_cast<uint32_t>(i);
    count += keep;
  }
  return count;
}

size_t SelectContainsRefine(const int64_t* begin, const int64_t* end,
                            const uint32_t* sel_in, size_t n_in, int64_t t,
                            uint32_t* sel_out) {
  size_t count = 0;
  for (size_t k = 0; k < n_in; ++k) {
    const uint32_t i = sel_in[k];
    const unsigned keep = static_cast<unsigned>(begin[i] <= t) &
                          static_cast<unsigned>(t < end[i]);
    sel_out[count] = i;
    count += keep;
  }
  return count;
}

size_t SelectEndEquals(const int64_t* end, size_t n, int64_t key,
                       uint32_t* sel_out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    sel_out[count] = static_cast<uint32_t>(i);
    count += static_cast<unsigned>(end[i] == key);
  }
  return count;
}

size_t SelectEndEqualsRefine(const int64_t* end, const uint32_t* sel_in,
                             size_t n_in, int64_t key, uint32_t* sel_out) {
  size_t count = 0;
  for (size_t k = 0; k < n_in; ++k) {
    const uint32_t i = sel_in[k];
    sel_out[count] = i;
    count += static_cast<unsigned>(end[i] == key);
  }
  return count;
}

size_t SelectLive(const uint8_t* live, size_t n, uint32_t* sel_out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    sel_out[count] = static_cast<uint32_t>(i);
    count += static_cast<unsigned>(live[i] != 0);
  }
  return count;
}

size_t SelectLiveRefine(const uint8_t* live, const uint32_t* sel_in,
                        size_t n_in, uint32_t* sel_out) {
  size_t count = 0;
  for (size_t k = 0; k < n_in; ++k) {
    const uint32_t i = sel_in[k];
    sel_out[count] = i;
    count += static_cast<unsigned>(live[i] != 0);
  }
  return count;
}

size_t IntersectPeriods(const int64_t* begin, const int64_t* end,
                        const uint32_t* sel_in, size_t n_in, int64_t o_begin,
                        int64_t o_end, uint32_t* sel_out, int64_t* out_begin,
                        int64_t* out_end) {
  size_t count = 0;
  for (size_t k = 0; k < n_in; ++k) {
    const uint32_t i = sel_in != nullptr ? sel_in[k] : static_cast<uint32_t>(k);
    const int64_t b = begin[i] > o_begin ? begin[i] : o_begin;
    const int64_t e = end[i] < o_end ? end[i] : o_end;
    sel_out[count] = i;
    out_begin[count] = b;
    out_end[count] = e;
    count += static_cast<unsigned>(b < e);
  }
  return count;
}

size_t IntersectBitemporal(const int64_t* v_begin, const int64_t* v_end,
                           const int64_t* t_begin, const int64_t* t_end,
                           const uint32_t* sel_in, size_t n_in,
                           int64_t ov_begin, int64_t ov_end, int64_t ot_begin,
                           int64_t ot_end, uint32_t* sel_out,
                           int64_t* out_v_begin, int64_t* out_v_end,
                           int64_t* out_t_begin, int64_t* out_t_end) {
  size_t count = 0;
  for (size_t k = 0; k < n_in; ++k) {
    const uint32_t i = sel_in != nullptr ? sel_in[k] : static_cast<uint32_t>(k);
    const int64_t vb = v_begin[i] > ov_begin ? v_begin[i] : ov_begin;
    const int64_t ve = v_end[i] < ov_end ? v_end[i] : ov_end;
    const int64_t tb = t_begin[i] > ot_begin ? t_begin[i] : ot_begin;
    const int64_t te = t_end[i] < ot_end ? t_end[i] : ot_end;
    sel_out[count] = i;
    out_v_begin[count] = vb;
    out_v_end[count] = ve;
    out_t_begin[count] = tb;
    out_t_end[count] = te;
    count += static_cast<unsigned>(vb < ve) & static_cast<unsigned>(tb < te);
  }
  return count;
}

}  // namespace kernels
}  // namespace temporadb
