#ifndef TEMPORADB_REL_BATCH_CURSOR_H_
#define TEMPORADB_REL_BATCH_CURSOR_H_

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rel/batch.h"
#include "rel/cursor.h"
#include "rel/expression.h"
#include "rel/relation.h"

namespace temporadb {

/// A pull-based *batch* stream: the vectorized counterpart of `RowCursor`.
///
/// `NextBatch()` yields column-major `Batch`es instead of single rows, so
/// one virtual call amortizes over ~`kDefaultBatchRows` rows and temporal
/// predicates run as selection-vector kernels over the batch's contiguous
/// chronon columns.  Yielded batches are always non-empty (operators whose
/// filtering empties a batch pull again instead of yielding it); nullopt
/// marks exhaustion.  Concatenating the yielded batches row-by-row gives
/// exactly the row sequence the equivalent `RowCursor` tree would produce —
/// bit-identical values, periods, order, and first-error — which is what
/// the differential tests assert.
///
/// Life cycle and borrowing rules are those of `RowCursor`: `Open()` exactly
/// once, shape accessors only after a successful `Open()`, inputs are
/// borrowed (debug-asserted through the same non-virtual-interface guard).
class BatchCursor {
 public:
  virtual ~BatchCursor() = default;

  /// Prepares the cursor tree; must be called exactly once, before
  /// `NextBatch()` or the shape accessors (debug-asserted).
  Status Open() {
    assert(!opened_ && "BatchCursor::Open() called twice");
    opened_ = true;
    return OpenImpl();
  }

  /// The next non-empty batch, or nullopt when the stream is exhausted.
  /// Batch sizes are an implementation detail of the producing operator;
  /// only the concatenated row sequence is contractual.
  Result<std::optional<Batch>> NextBatch() {
    assert(opened_ && "BatchCursor::NextBatch() before Open()");
    return NextBatchImpl();
  }

  /// Output shape; valid after `Open()` succeeded.
  const Schema& schema() const {
    assert(opened_ && "BatchCursor::schema() before Open()");
    return SchemaImpl();
  }
  TemporalClass temporal_class() const {
    assert(opened_ && "BatchCursor::temporal_class() before Open()");
    return TemporalClassImpl();
  }
  TemporalDataModel data_model() const {
    assert(opened_ && "BatchCursor::data_model() before Open()");
    return DataModelImpl();
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<std::optional<Batch>> NextBatchImpl() = 0;
  virtual const Schema& SchemaImpl() const = 0;
  virtual TemporalClass TemporalClassImpl() const = 0;
  virtual TemporalDataModel DataModelImpl() const = 0;

 private:
  bool opened_ = false;
};

using BatchCursorPtr = std::unique_ptr<BatchCursor>;

/// Source: slices a materialized rowset (borrowed) into batches of
/// `batch_rows`.
BatchCursorPtr MakeRowsetBatchCursor(const Rowset* input,
                                     size_t batch_rows = kDefaultBatchRows);

/// Rows for which `pred` (borrowed) evaluates to true; predicate errors
/// surface in row order, like the row-at-a-time select.
BatchCursorPtr MakeBatchSelectCursor(BatchCursorPtr input, const Expr* pred);

/// One output column per expression; output types are inferred from the
/// first input row (string for an empty input), and expressions are
/// evaluated in row-major order so the first error matches the row path.
BatchCursorPtr MakeBatchProjectCursor(BatchCursorPtr input,
                                      const std::vector<ExprPtr>* exprs,
                                      std::vector<std::string> names);

/// Bag union; schemas and temporal classes must agree (checked at Open).
BatchCursorPtr MakeBatchUnionCursor(BatchCursorPtr a, BatchCursorPtr b);

/// Rows of `a` not present in `b`; `b` is drained and hashed at Open.
BatchCursorPtr MakeBatchDifferenceCursor(BatchCursorPtr a, BatchCursorPtr b);

/// Streaming duplicate elimination (full-row equality).
BatchCursorPtr MakeBatchDistinctCursor(BatchCursorPtr input);

/// Sort by the given column indexes ascending; a pipeline breaker.
BatchCursorPtr MakeBatchSortCursor(BatchCursorPtr input,
                                   std::vector<size_t> keys);

/// Cartesian product in the meet class.  The inner operand `b` is drained
/// into one columnar buffer at Open; each outer row then intersects its
/// periods against the whole inner side with one branch-free kernel pass
/// (`IntersectBitemporal` / `IntersectPeriods`), dropping never-coexisting
/// pairs exactly like the row path's per-pair `Intersect` + empty check.
BatchCursorPtr MakeBatchCrossProductCursor(BatchCursorPtr a, BatchCursorPtr b);

/// Adapter: presents a batch tree as a `RowCursor` (rows are extracted one
/// at a time from the current batch).  Takes ownership.
RowCursorPtr MakeRowCursorOverBatches(BatchCursorPtr input);

/// Adapter: batches up a row stream (`batch_rows` rows per batch).
BatchCursorPtr MakeBatchCursorOverRows(RowCursorPtr input,
                                       size_t batch_rows = kDefaultBatchRows);

/// Drains a batch cursor into a rowset (Open + NextBatch loop).
Result<Rowset> MaterializeBatchCursor(BatchCursor* cursor);

}  // namespace temporadb

#endif  // TEMPORADB_REL_BATCH_CURSOR_H_
