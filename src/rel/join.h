#ifndef TEMPORADB_REL_JOIN_H_
#define TEMPORADB_REL_JOIN_H_

#include <vector>

#include "rel/expression.h"
#include "rel/relation.h"

namespace temporadb {

/// Join operators.  Like `CrossProduct`, joins intersect the operands'
/// temporal periods: a joined row exists only where both inputs coexist in
/// each maintained time dimension — the snapshot-reducible semantics of a
/// join applied state-by-state.

/// Nested-loop join with an arbitrary predicate over the concatenated row.
Result<Rowset> NestedLoopJoin(const Rowset& a, const Rowset& b,
                              const Expr& pred);

/// Hash equi-join on `a.keys_a[i] == b.keys_b[i]`.
Result<Rowset> HashEquiJoin(const Rowset& a, const Rowset& b,
                            const std::vector<size_t>& keys_a,
                            const std::vector<size_t>& keys_b);

}  // namespace temporadb

#endif  // TEMPORADB_REL_JOIN_H_
