#ifndef TEMPORADB_REL_OPERATORS_H_
#define TEMPORADB_REL_OPERATORS_H_

#include <vector>

#include "rel/expression.h"
#include "rel/relation.h"

namespace temporadb {

/// Classic relational operators over materialized rowsets.  Each returns a
/// new rowset; temporal columns ride along untouched (selection and
/// projection are snapshot-reducible — applying them per state is the same
/// as applying them to the stamped representation).
///
/// These are thin materializing wrappers over the streaming cursor
/// operators in rel/cursor.h; build a cursor tree directly to pipeline
/// without intermediate rowsets.

/// Rows for which `pred` evaluates to true.
Result<Rowset> Select(const Rowset& input, const Expr& pred);

/// One output column per expression in `exprs`, named by `names`.  The
/// output's temporal class matches the input's (temporal columns carried
/// through per row).
Result<Rowset> Project(const Rowset& input,
                       const std::vector<ExprPtr>& exprs,
                       const std::vector<std::string>& names);

/// Convenience projection onto existing attributes by index.
Result<Rowset> ProjectColumns(const Rowset& input,
                              const std::vector<size_t>& indexes);

/// Set union; schemas and temporal classes must agree.  Bag semantics
/// (use Distinct to dedupe).
Result<Rowset> Union(const Rowset& a, const Rowset& b);

/// Rows of `a` not present in `b` (set difference, comparing full rows
/// including temporal columns).
Result<Rowset> Difference(const Rowset& a, const Rowset& b);

/// Duplicate elimination (full-row equality).
Rowset Distinct(const Rowset& input);

/// Sorts by the given column indexes ascending (temporal columns break
/// ties deterministically).
Result<Rowset> SortBy(const Rowset& input, const std::vector<size_t>& keys);

/// Cartesian product.  The result's temporal class is the *meet* of the
/// inputs' classes; the combined row's periods are the intersections of the
/// operands' periods (a pair exists exactly when both facts coexist).
/// Pairs with an empty intersection in any maintained dimension are
/// dropped.  Operand classes without a meet (rollback x historical, which
/// share no time dimension) are rejected with InvalidArgument rather than
/// silently discarding both dimensions.
Result<Rowset> CrossProduct(const Rowset& a, const Rowset& b);

}  // namespace temporadb

#endif  // TEMPORADB_REL_OPERATORS_H_
