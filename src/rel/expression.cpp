#include "rel/expression.h"

#include <cmath>

#include "common/strings.h"

namespace temporadb {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "mod";
  }
  return "?";
}

namespace {

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}

  Result<Value> Eval(const std::vector<Value>&) const override {
    return value_;
  }

  std::string ToString() const override {
    if (value_.type() == ValueType::kString) {
      return "\"" + value_.ToString() + "\"";
    }
    return value_.ToString();
  }

 private:
  Value value_;
};

class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Result<Value> Eval(const std::vector<Value>& values) const override {
    if (index_ >= values.size()) {
      return Status::Internal(StringPrintf(
          "column index %zu out of range (row arity %zu)", index_,
          values.size()));
    }
    return values[index_];
  }

  std::string ToString() const override { return name_; }

 private:
  size_t index_;
  std::string name_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Eval(const std::vector<Value>& values) const override {
    TDB_ASSIGN_OR_RETURN(Value l, left_->Eval(values));
    TDB_ASSIGN_OR_RETURN(Value r, right_->Eval(values));
    TDB_ASSIGN_OR_RETURN(int c, Value::Compare(l, r));
    switch (op_) {
      case CompareOp::kEq:
        return Value(c == 0);
      case CompareOp::kNe:
        return Value(c != 0);
      case CompareOp::kLt:
        return Value(c < 0);
      case CompareOp::kLe:
        return Value(c <= 0);
      case CompareOp::kGt:
        return Value(c > 0);
      case CompareOp::kGe:
        return Value(c >= 0);
    }
    return Status::Internal("unhandled compare op");
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + " " +
           std::string(CompareOpName(op_)) + " " + right_->ToString() + ")";
  }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Eval(const std::vector<Value>& values) const override {
    TDB_ASSIGN_OR_RETURN(Value l, left_->Eval(values));
    TDB_ASSIGN_OR_RETURN(Value r, right_->Eval(values));
    bool int_math =
        l.type() == ValueType::kInt && r.type() == ValueType::kInt;
    if (int_math) {
      int64_t a = l.AsInt(), b = r.AsInt();
      switch (op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Value(a / b);
        case ArithOp::kMod:
          if (b == 0) return Status::InvalidArgument("mod by zero");
          return Value(a % b);
      }
    }
    TDB_ASSIGN_OR_RETURN(double a, l.AsNumeric());
    TDB_ASSIGN_OR_RETURN(double b, r.AsNumeric());
    switch (op_) {
      case ArithOp::kAdd:
        return Value(a + b);
      case ArithOp::kSub:
        return Value(a - b);
      case ArithOp::kMul:
        return Value(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
      case ArithOp::kMod:
        if (b == 0.0) return Status::InvalidArgument("mod by zero");
        return Value(std::fmod(a, b));
    }
    return Status::Internal("unhandled arith op");
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + " " + std::string(ArithOpName(op_)) +
           " " + right_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class LogicalExpr final : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Eval(const std::vector<Value>& values) const override {
    TDB_ASSIGN_OR_RETURN(Value l, left_->Eval(values));
    TDB_ASSIGN_OR_RETURN(Value r, right_->Eval(values));
    if (l.type() != ValueType::kBool || r.type() != ValueType::kBool) {
      return Status::InvalidArgument("logical operand is not boolean");
    }
    return Value(op_ == LogicalOp::kAnd ? (l.AsBool() && r.AsBool())
                                        : (l.AsBool() || r.AsBool()));
  }

  std::string ToString() const override {
    return "(" + left_->ToString() +
           (op_ == LogicalOp::kAnd ? " and " : " or ") + right_->ToString() +
           ")";
  }

 private:
  LogicalOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}

  Result<Value> Eval(const std::vector<Value>& values) const override {
    TDB_ASSIGN_OR_RETURN(Value v, inner_->Eval(values));
    if (v.type() != ValueType::kBool) {
      return Status::InvalidArgument("'not' operand is not boolean");
    }
    return Value(!v.AsBool());
  }

  std::string ToString() const override {
    return "not " + inner_->ToString();
  }

 private:
  ExprPtr inner_;
};

}  // namespace

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}

ExprPtr MakeColumnRef(size_t index, std::string display_name) {
  return std::make_shared<ColumnRefExpr>(index, std::move(display_name));
}

ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<CompareExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeArith(ArithOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeLogical(LogicalOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeNot(ExprPtr inner) {
  return std::make_shared<NotExpr>(std::move(inner));
}

Result<bool> EvalPredicate(const Expr& expr,
                           const std::vector<Value>& values) {
  TDB_ASSIGN_OR_RETURN(Value v, expr.Eval(values));
  if (v.type() != ValueType::kBool) {
    return Status::InvalidArgument("predicate did not evaluate to a boolean");
  }
  return v.AsBool();
}

}  // namespace temporadb
