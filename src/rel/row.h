#ifndef TEMPORADB_REL_ROW_H_
#define TEMPORADB_REL_ROW_H_

#include <optional>
#include <string>
#include <vector>

#include "common/period.h"
#include "common/value.h"

namespace temporadb {

/// A row of a derived (query-result) relation.
///
/// The optional periods mirror the taxonomy: a row of a static result has
/// neither; historical results carry `valid`; rollback/temporal machinery
/// carries `txn`.  Which ones are populated is dictated by the rowset's
/// temporal class, and the operators preserve that discipline.
struct Row {
  std::vector<Value> values;
  std::optional<Period> valid;
  std::optional<Period> txn;

  friend bool operator==(const Row& a, const Row& b) {
    return a.values == b.values && a.valid == b.valid && a.txn == b.txn;
  }

  /// Ordering for sort/distinct: values, then valid begin, then txn begin.
  friend bool operator<(const Row& a, const Row& b);

  std::string ToString() const;
};

}  // namespace temporadb

#endif  // TEMPORADB_REL_ROW_H_
