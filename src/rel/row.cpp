#include "rel/row.h"

namespace temporadb {

namespace {

// Orders optional periods: absent < present; present by (begin, end).
int ComparePeriodOpt(const std::optional<Period>& a,
                     const std::optional<Period>& b) {
  if (a.has_value() != b.has_value()) return a.has_value() ? 1 : -1;
  if (!a.has_value()) return 0;
  if (a->begin() != b->begin()) return a->begin() < b->begin() ? -1 : 1;
  if (a->end() != b->end()) return a->end() < b->end() ? -1 : 1;
  return 0;
}

}  // namespace

bool operator<(const Row& a, const Row& b) {
  if (a.values != b.values) return a.values < b.values;
  int c = ComparePeriodOpt(a.valid, b.valid);
  if (c != 0) return c < 0;
  return ComparePeriodOpt(a.txn, b.txn) < 0;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += ")";
  if (valid.has_value()) {
    out += " v";
    out += valid->ToString();
  }
  if (txn.has_value()) {
    out += " t";
    out += txn->ToString();
  }
  return out;
}

}  // namespace temporadb
