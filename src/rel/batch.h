#ifndef TEMPORADB_REL_BATCH_H_
#define TEMPORADB_REL_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/period.h"
#include "rel/row.h"

namespace temporadb {

/// Rows per batch unless a caller asks otherwise.  Large enough to amortize
/// one virtual `NextBatch()` over ~1k rows, small enough that a batch's
/// chronon columns (4 × 8 KiB) stay L1/L2-resident through a kernel chain.
inline constexpr size_t kDefaultBatchRows = 1024;

/// A column of explicit attribute values (one entry per batch row).
using ColumnVector = std::vector<Value>;

/// A contiguous chronon column: one `int64_t` day count per row, with the
/// `Chronon` sentinels stored as their raw reps (∞ is just a big value, so
/// kernels need no special cases).
using ChrononColumn = std::vector<int64_t>;

/// A selection vector: ascending row indexes into a batch, produced by the
/// branch-free kernels in rel/kernels.h.
using SelectionVector = std::vector<uint32_t>;

/// A fixed-size column-major slice of a derived relation: the unit of flow
/// of the vectorized executor (rel/batch_cursor.h).
///
/// Explicit attributes are stored as one `ColumnVector` per schema column;
/// the DBMS-maintained temporal dimensions are stored as *contiguous
/// `int64_t` chronon columns* (`valid_from`/`valid_to`, `tt_start`/
/// `tt_end`), present exactly when the batch's temporal class maintains
/// the dimension — the columnar counterpart of `Row`'s optional periods.
/// Temporal predicates therefore run as tight selection-vector loops over
/// flat arrays instead of per-row `Period` calls.
///
/// This is an executor-internal value type: operators read and write the
/// members directly, and invariants (every present column has `rows()`
/// entries) are maintained by construction, asserted in `CheckInvariants`
/// under debug.
struct Batch {
  std::vector<ColumnVector> columns;
  ChrononColumn valid_from;
  ChrononColumn valid_to;
  ChrononColumn tt_start;
  ChrononColumn tt_end;
  bool has_valid = false;
  bool has_txn = false;

  Batch() = default;
  Batch(size_t width, bool with_valid, bool with_txn)
      : columns(width), has_valid(with_valid), has_txn(with_txn) {}

  size_t width() const { return columns.size(); }
  size_t rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  void ReserveRows(size_t n);
  void Clear();

  /// The valid / transaction period of row `i` (the batch must maintain
  /// the dimension).
  Period ValidAt(size_t i) const {
    return Period(Chronon(valid_from[i]), Chronon(valid_to[i]));
  }
  Period TxnAt(size_t i) const {
    return Period(Chronon(tt_start[i]), Chronon(tt_end[i]));
  }

  /// Appends a row; `row` must populate exactly the periods this batch
  /// maintains (the same discipline `Rowset::AddRow` checks).
  void AppendRow(const Row& row);

  /// Appends row `i` of `src` (same shape).
  void AppendRowFrom(const Batch& src, size_t i);

  /// Appends explicit values only; the caller then pushes the chronon
  /// entries directly (used by operators that compute periods in columns).
  void AppendValuesFrom(const Batch& src, size_t i);

  /// Bumps the row count after columns were filled directly.  The new
  /// count must match every present column's length (debug-asserted).
  void SetRowCount(size_t n);

  /// Row `i` as a row-major `Row` (the adapter exit path).
  Row ExtractRow(size_t i) const;

  /// Keeps only the rows named by `sel` (ascending), in place.
  void Compact(const SelectionVector& sel, size_t n);

  void CheckInvariants() const;

 private:
  size_t num_rows_ = 0;
};

}  // namespace temporadb

#endif  // TEMPORADB_REL_BATCH_H_
