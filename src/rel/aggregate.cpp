#include "rel/aggregate.h"

#include <map>

#include "common/strings.h"
#include "rel/batch_cursor.h"

namespace temporadb {

std::string_view AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAny:
      return "any";
  }
  return "?";
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_float = false;
  Value min;
  Value max;
  Value any;
};

}  // namespace

Result<Rowset> Aggregate(const Rowset& input,
                         const std::vector<size_t>& group_by,
                         const std::vector<AggSpec>& aggs) {
  for (size_t g : group_by) {
    if (g >= input.schema().size()) {
      return Status::InvalidArgument("group-by index out of range");
    }
  }
  for (const AggSpec& a : aggs) {
    if (a.func != AggFunc::kCount && a.column >= input.schema().size()) {
      return Status::InvalidArgument(StringPrintf(
          "aggregate column out of range for %s",
          std::string(AggFuncName(a.func)).c_str()));
    }
  }

  // Output schema: group columns then aggregates.
  std::vector<Attribute> attrs;
  for (size_t g : group_by) attrs.push_back(input.schema().at(g));
  for (const AggSpec& a : aggs) {
    ValueType vt = ValueType::kInt;
    if (a.func == AggFunc::kAvg) vt = ValueType::kFloat;
    if (a.func == AggFunc::kMin || a.func == AggFunc::kMax ||
        a.func == AggFunc::kAny) {
      vt = a.column < input.schema().size()
               ? input.schema().at(a.column).type.value_type()
               : ValueType::kNull;
    }
    if (a.func == AggFunc::kSum) {
      vt = input.schema().at(a.column).type.value_type();
    }
    attrs.push_back(Attribute{a.as_name, Type(vt)});
  }
  TDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Rowset out(std::move(schema), TemporalClass::kStatic);

  // Accumulate batch-at-a-time: the grouping key and each aggregate input
  // read straight out of the batch's column vectors, so a batch of rows
  // costs one virtual pull instead of one per row.  Row order (and so the
  // first AsNumeric error) is that of the input rowset.
  std::map<std::vector<Value>, std::vector<AggState>> groups;
  const Value kZero(int64_t{0});
  BatchCursorPtr cursor = MakeRowsetBatchCursor(&input);
  TDB_RETURN_IF_ERROR(cursor->Open());
  while (true) {
    TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, cursor->NextBatch());
    if (!batch.has_value()) break;
    for (size_t r = 0; r < batch->rows(); ++r) {
      std::vector<Value> key;
      key.reserve(group_by.size());
      for (size_t g : group_by) key.push_back(batch->columns[g][r]);
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) it->second.resize(aggs.size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        AggState& st = it->second[i];
        const AggSpec& spec = aggs[i];
        const Value& v = spec.func == AggFunc::kCount
                             ? kZero
                             : batch->columns[spec.column][r];
        ++st.count;
        switch (spec.func) {
          case AggFunc::kCount:
            break;
          case AggFunc::kSum:
          case AggFunc::kAvg: {
            TDB_ASSIGN_OR_RETURN(double d, v.AsNumeric());
            st.sum += d;
            if (v.type() == ValueType::kFloat) st.sum_is_float = true;
            break;
          }
          case AggFunc::kMin:
            if (st.min.is_null() || v < st.min) st.min = v;
            break;
          case AggFunc::kMax:
            if (st.max.is_null() || st.max < v) st.max = v;
            break;
          case AggFunc::kAny:
            if (st.any.is_null()) st.any = v;
            break;
        }
      }
    }
  }

  if (groups.empty() && group_by.empty()) {
    // SQL-style global aggregate over an empty input.
    groups.try_emplace({}).first->second.resize(aggs.size());
  }

  for (const auto& [key, states] : groups) {
    Row row;
    row.values = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggState& st = states[i];
      switch (aggs[i].func) {
        case AggFunc::kCount:
          row.values.push_back(Value(st.count));
          break;
        case AggFunc::kSum:
          if (st.count == 0) {
            row.values.push_back(Value::Null());
          } else if (st.sum_is_float) {
            row.values.push_back(Value(st.sum));
          } else {
            row.values.push_back(Value(static_cast<int64_t>(st.sum)));
          }
          break;
        case AggFunc::kAvg:
          row.values.push_back(st.count == 0
                                   ? Value::Null()
                                   : Value(st.sum / st.count));
          break;
        case AggFunc::kMin:
          row.values.push_back(st.min);
          break;
        case AggFunc::kMax:
          row.values.push_back(st.max);
          break;
        case AggFunc::kAny:
          row.values.push_back(st.any);
          break;
      }
    }
    TDB_RETURN_IF_ERROR(out.AddRow(std::move(row)));
  }
  return out;
}

}  // namespace temporadb
