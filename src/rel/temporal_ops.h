#ifndef TEMPORADB_REL_TEMPORAL_OPS_H_
#define TEMPORADB_REL_TEMPORAL_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rel/relation.h"
#include "temporal/stored_relation.h"

namespace temporadb {

/// Temporal operators and the TQuel temporal-expression machinery.

/// Materializes a stored relation into a rowset in its natural class:
///  - static     ⇒ bare rows;
///  - rollback   ⇒ rows with transaction periods (the Figure 4 view);
///  - historical ⇒ rows with valid periods (the Figure 6 view);
///  - temporal   ⇒ rows with both (the Figure 8 view).
Result<Rowset> ScanStored(const StoredRelation& rel);

/// The paper's *rollback* operation: the state of a rollback or temporal
/// relation as of transaction time `t`.
///  - On a rollback relation, yields a **static** rowset (§4.2: "the result
///    of a query on a static rollback database is a pure static relation").
///  - On a temporal relation, yields an **historical** rowset (§4.4: the
///    rollback operation "selects a particular historical state").
/// `NotSupported` on kinds without transaction time.
Result<Rowset> Rollback(const StoredRelation& rel, Chronon t);

/// Like `Rollback`, but keeps the transaction periods on the rows (used
/// when the derived relation itself must be temporal/rollback-class, i.e.
/// for further `as of` queries; §4.4's derived temporal relations).
Result<Rowset> RollbackKeepTxn(const StoredRelation& rel, Chronon t);

/// Valid timeslice of an historical rowset: rows whose valid period
/// contains `v`, as a static rowset.  `NotSupported` without valid time.
Result<Rowset> Timeslice(const Rowset& input, Chronon v);

/// The current stored state of any relation, as a rowset that keeps the
/// kind's *valid* dimension but drops transaction time: the historical view
/// a plain `retrieve` sees.  (For static/rollback kinds this is a static
/// rowset.)
Result<Rowset> CurrentState(const StoredRelation& rel);

// ---------------------------------------------------------------------------
// TQuel temporal expressions and predicates
// ---------------------------------------------------------------------------

/// A binding of each range variable to the valid period of the tuple it is
/// currently bound to (indexed by range-variable ordinal).
using PeriodBinding = std::vector<Period>;

/// A TQuel temporal *expression* (`valid` clause and `when` operands):
/// evaluates to a Period under a binding.  Grammar:
///   e ::= <range var> | <date literal> | begin of e | end of e
///       | e overlap e (intersection) | e extend e (span)
class TemporalExpr {
 public:
  virtual ~TemporalExpr() = default;
  virtual Result<Period> Eval(const PeriodBinding& binding) const = 0;
  virtual std::string ToString() const = 0;

  /// The range-variable ordinal when this expression is exactly a bare
  /// range-variable reference; nullopt otherwise.  Used by pushdown
  /// extraction to recognize `<var> overlap <window>` shapes.
  virtual std::optional<size_t> AsVarRef() const { return std::nullopt; }

  /// True when every range variable referenced by this expression has
  /// ordinal < `prefix` — i.e. the expression can be evaluated once the
  /// first `prefix` participants of a join are bound.  Literals bind
  /// nothing and return true.
  virtual bool OnlyBindsBelow(size_t prefix) const {
    (void)prefix;
    return true;
  }
};

using TemporalExprPtr = std::shared_ptr<const TemporalExpr>;

TemporalExprPtr MakeVarPeriod(size_t var_index, std::string display_name);
TemporalExprPtr MakePeriodLiteral(Period p, std::string display);
TemporalExprPtr MakeBeginOf(TemporalExprPtr inner);
TemporalExprPtr MakeEndOf(TemporalExprPtr inner);
TemporalExprPtr MakeOverlapExpr(TemporalExprPtr left, TemporalExprPtr right);
TemporalExprPtr MakeExtendExpr(TemporalExprPtr left, TemporalExprPtr right);

/// A TQuel temporal *predicate* (`when` clause):
///   p ::= e precede e | e overlap e | e equal e
///       | p and p | p or p | not p
class TemporalPred {
 public:
  virtual ~TemporalPred() = default;
  virtual Result<bool> Eval(const PeriodBinding& binding) const = 0;
  virtual std::string ToString() const = 0;

  /// Extracts a *sound implied overlap window* for range variable `var`
  /// from this predicate, given that participants with ordinal < `prefix`
  /// are already bound in `binding` (entries at ordinal >= `prefix` are
  /// never read).
  ///
  /// The contract: if the returned window is `W`, then for every tuple
  /// whose (nonempty) valid period does NOT overlap `W`, this predicate is
  /// guaranteed false under any extension of `binding` that binds `var` to
  /// that tuple.  A scan may therefore skip such tuples.  An *empty* `W`
  /// means the predicate can never hold (prune everything); nullopt means
  /// no window could be derived (scan unconstrained) — always safe.
  ///
  /// Recognized shapes: `var overlap/equal e`, `var precede e`,
  /// `e precede var` (with `e` evaluable from the bound prefix), plus
  /// `and` (either side's window) and `or` (the span of both sides'
  /// windows).  `not` derives nothing.
  virtual std::optional<Period> PushdownWindow(size_t var,
                                               const PeriodBinding& binding,
                                               size_t prefix) const {
    (void)var;
    (void)binding;
    (void)prefix;
    return std::nullopt;
  }
};

using TemporalPredPtr = std::shared_ptr<const TemporalPred>;

TemporalPredPtr MakePrecedePred(TemporalExprPtr left, TemporalExprPtr right);
TemporalPredPtr MakeOverlapPred(TemporalExprPtr left, TemporalExprPtr right);
TemporalPredPtr MakeEqualPred(TemporalExprPtr left, TemporalExprPtr right);
TemporalPredPtr MakeAndPred(TemporalPredPtr left, TemporalPredPtr right);
TemporalPredPtr MakeOrPred(TemporalPredPtr left, TemporalPredPtr right);
TemporalPredPtr MakeNotPred(TemporalPredPtr inner);

}  // namespace temporadb

#endif  // TEMPORADB_REL_TEMPORAL_OPS_H_
