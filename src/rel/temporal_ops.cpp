#include "rel/temporal_ops.h"

#include "common/strings.h"
#include "rel/batch_cursor.h"
#include "rel/kernels.h"

namespace temporadb {

namespace {

Row RowFrom(const BitemporalTuple& t, bool with_valid, bool with_txn) {
  Row row;
  row.values = t.values;
  if (with_valid) row.valid = t.valid;
  if (with_txn) row.txn = t.txn;
  return row;
}

// Row from position `i` of a scan batch: values are borrowed from the
// stored tuple, periods are decoded from the batch's chronon columns (the
// same reps the store's columns mirror, so identical to the tuple's).
Row RowFromBatch(const VersionBatch& batch, size_t i, bool with_valid,
                 bool with_txn) {
  Row row;
  row.values = batch.tuples[i]->values;
  if (with_valid) {
    row.valid = Period(Chronon(batch.valid_from[i]),
                       Chronon(batch.valid_to[i]));
  }
  if (with_txn) {
    row.txn = Period(Chronon(batch.tt_start[i]), Chronon(batch.tt_end[i]));
  }
  return row;
}

}  // namespace

Result<Rowset> ScanStored(const StoredRelation& rel) {
  TemporalClass cls = rel.temporal_class();
  Rowset out(rel.schema(), cls, rel.data_model());
  const bool with_valid = SupportsValidTime(cls);
  const bool with_txn = SupportsTransactionTime(cls);
  if (rel.store()->options().batch_exec) {
    VersionBatchScan scan = rel.store()->BatchScanAll();
    VersionBatch batch;
    while (scan.Next(&batch)) {
      for (size_t i = 0; i < batch.size(); ++i) {
        TDB_RETURN_IF_ERROR(
            out.AddRow(RowFromBatch(batch, i, with_valid, with_txn)));
      }
    }
    return out;
  }
  Status status = Status::OK();
  rel.store()->ForEach([&](RowId, const BitemporalTuple& t) {
    if (!status.ok()) return;
    status = out.AddRow(RowFrom(t, with_valid, with_txn));
  });
  TDB_RETURN_IF_ERROR(status);
  return out;
}

Result<Rowset> Rollback(const StoredRelation& rel, Chronon t) {
  TemporalClass cls = rel.temporal_class();
  if (!SupportsTransactionTime(cls)) {
    return Status::NotSupported(StringPrintf(
        "relation '%s' is %s and does not support rollback ('as of'); only "
        "rollback and temporal relations maintain transaction time",
        rel.info().name.c_str(),
        std::string(TemporalClassName(cls)).c_str()));
  }
  // Rollback strips transaction time from the result: rollback relations
  // yield static rowsets, temporal relations yield historical ones.
  TemporalClass derived = cls == TemporalClass::kRollback
                              ? TemporalClass::kStatic
                              : TemporalClass::kHistorical;
  Rowset out(rel.schema(), derived, rel.data_model());
  const bool with_valid = SupportsValidTime(derived);
  for (RowId row : rel.store()->TxnAsOf(t)) {
    TDB_ASSIGN_OR_RETURN(const BitemporalTuple* tuple, rel.store()->Get(row));
    TDB_RETURN_IF_ERROR(out.AddRow(RowFrom(*tuple, with_valid, false)));
  }
  return out;
}

Result<Rowset> RollbackKeepTxn(const StoredRelation& rel, Chronon t) {
  TemporalClass cls = rel.temporal_class();
  if (!SupportsTransactionTime(cls)) {
    return Status::NotSupported(StringPrintf(
        "relation '%s' is %s and does not support rollback ('as of')",
        rel.info().name.c_str(),
        std::string(TemporalClassName(cls)).c_str()));
  }
  Rowset out(rel.schema(), cls, rel.data_model());
  const bool with_valid = SupportsValidTime(cls);
  for (RowId row : rel.store()->TxnAsOf(t)) {
    TDB_ASSIGN_OR_RETURN(const BitemporalTuple* tuple, rel.store()->Get(row));
    TDB_RETURN_IF_ERROR(out.AddRow(RowFrom(*tuple, with_valid, true)));
  }
  return out;
}

Result<Rowset> Timeslice(const Rowset& input, Chronon v) {
  if (!input.has_valid_time()) {
    return Status::NotSupported(
        "timeslice requires valid time (historical or temporal relation)");
  }
  // Slicing drops valid time; transaction time (if any) survives.
  TemporalClass derived = input.has_txn_time() ? TemporalClass::kRollback
                                               : TemporalClass::kStatic;
  Rowset out(input.schema(), derived, input.data_model());
  // Batch the input and slice each batch with one branch-free containment
  // kernel over the contiguous valid-from/valid-to columns (identical to
  // the per-row `Period::Contains` loop, minus the per-row branch).
  BatchCursorPtr cursor = MakeRowsetBatchCursor(&input);
  TDB_RETURN_IF_ERROR(cursor->Open());
  SelectionVector sel;
  while (true) {
    TDB_ASSIGN_OR_RETURN(std::optional<Batch> batch, cursor->NextBatch());
    if (!batch.has_value()) break;
    sel.resize(batch->rows());
    const size_t n = kernels::SelectContains(batch->valid_from.data(),
                                             batch->valid_to.data(),
                                             batch->rows(), v.days(),
                                             sel.data());
    for (size_t k = 0; k < n; ++k) {
      const size_t i = sel[k];
      Row sliced;
      sliced.values.reserve(batch->width());
      for (size_t c = 0; c < batch->width(); ++c) {
        sliced.values.push_back(batch->columns[c][i]);
      }
      if (batch->has_txn) sliced.txn = batch->TxnAt(i);
      TDB_RETURN_IF_ERROR(out.AddRow(std::move(sliced)));
    }
  }
  return out;
}

Result<Rowset> CurrentState(const StoredRelation& rel) {
  TemporalClass cls = rel.temporal_class();
  const bool with_valid = SupportsValidTime(cls);
  TemporalClass derived =
      with_valid ? TemporalClass::kHistorical : TemporalClass::kStatic;
  Rowset out(rel.schema(), derived, rel.data_model());
  // An empty spec resolves to the current stored state for kinds with
  // transaction time and a full sweep otherwise, in row order either way.
  if (rel.store()->options().batch_exec) {
    VersionBatchScan scan = rel.BatchScan({});
    VersionBatch batch;
    while (scan.Next(&batch)) {
      for (size_t i = 0; i < batch.size(); ++i) {
        TDB_RETURN_IF_ERROR(
            out.AddRow(RowFromBatch(batch, i, with_valid, false)));
      }
    }
    return out;
  }
  VersionScan scan = rel.Scan({});
  while (const BitemporalTuple* t = scan.Next()) {
    TDB_RETURN_IF_ERROR(out.AddRow(RowFrom(*t, with_valid, false)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Temporal expressions
// ---------------------------------------------------------------------------

namespace {

class VarPeriodExpr final : public TemporalExpr {
 public:
  VarPeriodExpr(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Result<Period> Eval(const PeriodBinding& binding) const override {
    if (index_ >= binding.size()) {
      return Status::Internal("range variable not bound");
    }
    return binding[index_];
  }

  std::string ToString() const override { return name_; }

  std::optional<size_t> AsVarRef() const override { return index_; }

  bool OnlyBindsBelow(size_t prefix) const override {
    return index_ < prefix;
  }

 private:
  size_t index_;
  std::string name_;
};

class PeriodLiteralExpr final : public TemporalExpr {
 public:
  PeriodLiteralExpr(Period p, std::string display)
      : period_(p), display_(std::move(display)) {}

  Result<Period> Eval(const PeriodBinding&) const override { return period_; }

  std::string ToString() const override { return display_; }

 private:
  Period period_;
  std::string display_;
};

class EndpointExpr final : public TemporalExpr {
 public:
  EndpointExpr(bool begin, TemporalExprPtr inner)
      : begin_(begin), inner_(std::move(inner)) {}

  Result<Period> Eval(const PeriodBinding& binding) const override {
    TDB_ASSIGN_OR_RETURN(Period p, inner_->Eval(binding));
    if (p.IsEmpty()) {
      return Status::InvalidArgument("endpoint of an empty period");
    }
    return begin_ ? p.BeginEvent() : p.EndEvent();
  }

  std::string ToString() const override {
    return std::string(begin_ ? "begin of " : "end of ") + inner_->ToString();
  }

  bool OnlyBindsBelow(size_t prefix) const override {
    return inner_->OnlyBindsBelow(prefix);
  }

 private:
  bool begin_;
  TemporalExprPtr inner_;
};

class BinaryPeriodExpr final : public TemporalExpr {
 public:
  BinaryPeriodExpr(bool overlap, TemporalExprPtr left, TemporalExprPtr right)
      : overlap_(overlap), left_(std::move(left)), right_(std::move(right)) {}

  Result<Period> Eval(const PeriodBinding& binding) const override {
    TDB_ASSIGN_OR_RETURN(Period l, left_->Eval(binding));
    TDB_ASSIGN_OR_RETURN(Period r, right_->Eval(binding));
    return overlap_ ? l.Intersect(r) : l.Extend(r);
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + (overlap_ ? " overlap " : " extend ") +
           right_->ToString() + ")";
  }

  bool OnlyBindsBelow(size_t prefix) const override {
    return left_->OnlyBindsBelow(prefix) && right_->OnlyBindsBelow(prefix);
  }

 private:
  bool overlap_;
  TemporalExprPtr left_;
  TemporalExprPtr right_;
};

enum class PredKind { kPrecede, kOverlap, kEqual };

class ComparePred final : public TemporalPred {
 public:
  ComparePred(PredKind kind, TemporalExprPtr left, TemporalExprPtr right)
      : kind_(kind), left_(std::move(left)), right_(std::move(right)) {}

  Result<bool> Eval(const PeriodBinding& binding) const override {
    TDB_ASSIGN_OR_RETURN(Period l, left_->Eval(binding));
    TDB_ASSIGN_OR_RETURN(Period r, right_->Eval(binding));
    switch (kind_) {
      case PredKind::kPrecede:
        return l.Precedes(r);
      case PredKind::kOverlap:
        return l.Overlaps(r);
      case PredKind::kEqual:
        return l == r;
    }
    return Status::Internal("unhandled temporal predicate");
  }

  std::string ToString() const override {
    const char* op = kind_ == PredKind::kPrecede
                         ? " precede "
                         : (kind_ == PredKind::kOverlap ? " overlap "
                                                        : " equal ");
    return "(" + left_->ToString() + op + right_->ToString() + ")";
  }

  std::optional<Period> PushdownWindow(size_t var,
                                       const PeriodBinding& binding,
                                       size_t prefix) const override {
    // Recognize `<var> <op> e` / `e <op> <var>` where `e` is evaluable from
    // the already-bound prefix (so it cannot reference `var` itself).
    const bool var_left =
        left_->AsVarRef() == var && right_->OnlyBindsBelow(prefix);
    const bool var_right =
        right_->AsVarRef() == var && left_->OnlyBindsBelow(prefix);
    if (!var_left && !var_right) return std::nullopt;
    Result<Period> other =
        var_left ? right_->Eval(binding) : left_->Eval(binding);
    // An unevaluable window (e.g. `end of` an empty intersection) is not an
    // error here: extraction just declines and the scan stays full.  The
    // leaf predicate evaluation reports the error with full context.
    if (!other.ok()) return std::nullopt;
    const Period w = *other;
    switch (kind_) {
      case PredKind::kOverlap:
      case PredKind::kEqual:
        // `p overlap w` is the window verbatim; `p equal w` implies it
        // (stored valid periods are nonempty, so an empty `w` means the
        // predicate can never hold — an empty window, prune all).
        return w;
      case PredKind::kPrecede:
        // Precedes is false against an empty operand; surface that as an
        // empty window rather than a half-line one.
        if (w.IsEmpty()) return w;
        if (var_left) {
          // p precede w  ⇒  p ⊆ [beginning, w.begin)
          return Period(Chronon::Beginning(), w.begin());
        }
        // w precede p  ⇒  p ⊆ [w.end, forever)
        return Period::From(w.end());
    }
    return std::nullopt;
  }

 private:
  PredKind kind_;
  TemporalExprPtr left_;
  TemporalExprPtr right_;
};

class LogicalPred final : public TemporalPred {
 public:
  LogicalPred(bool is_and, TemporalPredPtr left, TemporalPredPtr right)
      : is_and_(is_and), left_(std::move(left)), right_(std::move(right)) {}

  Result<bool> Eval(const PeriodBinding& binding) const override {
    TDB_ASSIGN_OR_RETURN(bool l, left_->Eval(binding));
    if (is_and_ && !l) return false;
    if (!is_and_ && l) return true;
    return right_->Eval(binding);
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + (is_and_ ? " and " : " or ") +
           right_->ToString() + ")";
  }

  std::optional<Period> PushdownWindow(size_t var,
                                       const PeriodBinding& binding,
                                       size_t prefix) const override {
    std::optional<Period> l = left_->PushdownWindow(var, binding, prefix);
    std::optional<Period> r = right_->PushdownWindow(var, binding, prefix);
    if (is_and_) {
      // Both conjuncts must hold, so either side's window alone is sound.
      // Intersecting them is NOT (a period can overlap each of two windows
      // while missing their intersection) — prefer the shorter one.
      if (l.has_value() && r.has_value()) {
        return l->Duration() <= r->Duration() ? l : r;
      }
      return l.has_value() ? l : r;
    }
    // A disjunction needs a window from *both* sides; their span covers
    // every tuple either side could accept.  An empty side contributes
    // nothing (that disjunct can never hold).
    if (!l.has_value() || !r.has_value()) return std::nullopt;
    if (l->IsEmpty()) return r;
    if (r->IsEmpty()) return l;
    return l->Extend(*r);
  }

 private:
  bool is_and_;
  TemporalPredPtr left_;
  TemporalPredPtr right_;
};

class NotPred final : public TemporalPred {
 public:
  explicit NotPred(TemporalPredPtr inner) : inner_(std::move(inner)) {}

  Result<bool> Eval(const PeriodBinding& binding) const override {
    TDB_ASSIGN_OR_RETURN(bool b, inner_->Eval(binding));
    return !b;
  }

  std::string ToString() const override {
    return "not " + inner_->ToString();
  }

 private:
  TemporalPredPtr inner_;
};

}  // namespace

TemporalExprPtr MakeVarPeriod(size_t var_index, std::string display_name) {
  return std::make_shared<VarPeriodExpr>(var_index, std::move(display_name));
}

TemporalExprPtr MakePeriodLiteral(Period p, std::string display) {
  return std::make_shared<PeriodLiteralExpr>(p, std::move(display));
}

TemporalExprPtr MakeBeginOf(TemporalExprPtr inner) {
  return std::make_shared<EndpointExpr>(true, std::move(inner));
}

TemporalExprPtr MakeEndOf(TemporalExprPtr inner) {
  return std::make_shared<EndpointExpr>(false, std::move(inner));
}

TemporalExprPtr MakeOverlapExpr(TemporalExprPtr left, TemporalExprPtr right) {
  return std::make_shared<BinaryPeriodExpr>(true, std::move(left),
                                            std::move(right));
}

TemporalExprPtr MakeExtendExpr(TemporalExprPtr left, TemporalExprPtr right) {
  return std::make_shared<BinaryPeriodExpr>(false, std::move(left),
                                            std::move(right));
}

TemporalPredPtr MakePrecedePred(TemporalExprPtr left, TemporalExprPtr right) {
  return std::make_shared<ComparePred>(PredKind::kPrecede, std::move(left),
                                       std::move(right));
}

TemporalPredPtr MakeOverlapPred(TemporalExprPtr left, TemporalExprPtr right) {
  return std::make_shared<ComparePred>(PredKind::kOverlap, std::move(left),
                                       std::move(right));
}

TemporalPredPtr MakeEqualPred(TemporalExprPtr left, TemporalExprPtr right) {
  return std::make_shared<ComparePred>(PredKind::kEqual, std::move(left),
                                       std::move(right));
}

TemporalPredPtr MakeAndPred(TemporalPredPtr left, TemporalPredPtr right) {
  return std::make_shared<LogicalPred>(true, std::move(left),
                                       std::move(right));
}

TemporalPredPtr MakeOrPred(TemporalPredPtr left, TemporalPredPtr right) {
  return std::make_shared<LogicalPred>(false, std::move(left),
                                       std::move(right));
}

TemporalPredPtr MakeNotPred(TemporalPredPtr inner) {
  return std::make_shared<NotPred>(std::move(inner));
}

}  // namespace temporadb
