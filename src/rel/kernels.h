#ifndef TEMPORADB_REL_KERNELS_H_
#define TEMPORADB_REL_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace temporadb {
namespace kernels {

/// Branch-free selection kernels over contiguous chronon columns.
///
/// These are the innermost loops of the vectorized executor: a temporal
/// predicate evaluated over a batch is one pass over `int64_t` columns,
/// appending surviving row indexes to a *selection vector* instead of
/// branching per row.  Every kernel follows the same convention:
///
///  - inputs are raw pointers into contiguous chronon columns
///    (`valid_from`/`valid_to` or `tt_start`/`tt_end`, one `int64_t` per
///    row, sentinels included — `Chronon::kForeverRep` is just a large
///    value, so ∞ needs no special casing);
///  - `*_out` receives the indexes of the rows that pass, in ascending
///    order; the caller provides capacity for `n` entries;
///  - the return value is the number of survivors;
///  - `Refine` variants read candidate indexes from a previous selection
///    vector instead of the dense range `[0, n)`, so predicates compose
///    without materializing intermediate batches.
///
/// The loops are written as `sel_out[count] = i; count += keep;` with
/// `keep` computed from integer comparisons — no data-dependent branch, so
/// the selectivity of the predicate cannot stall the pipeline and the
/// compiler is free to unroll/vectorize.  This file must stay free of
/// dynamic dispatch and boxed values (tools/tdb_lint.py enforces it): the
/// whole point is that a temporal predicate over a batch touches nothing
/// but these flat arrays.
///
/// Semantics mirror `Period` exactly (half-open `[begin, end)`):
///  - overlap:  `begin < q_end && q_begin < end && begin < end` (the row's
///    period must itself be non-empty; callers guarantee the query window
///    is non-empty, matching `Period::Overlaps`);
///  - contains: `begin <= t && t < end` (`Period::Contains(Chronon)`);
///  - current:  `end == kForeverRep` (`BitemporalTuple::IsCurrentState`).

/// Rows whose period `[begin[i], end[i])` overlaps `[q_begin, q_end)`.
/// The query window must be non-empty.
size_t SelectOverlaps(const int64_t* begin, const int64_t* end, size_t n,
                      int64_t q_begin, int64_t q_end, uint32_t* sel_out);

/// Refine: same predicate over the `n_in` candidates in `sel_in`.
size_t SelectOverlapsRefine(const int64_t* begin, const int64_t* end,
                            const uint32_t* sel_in, size_t n_in,
                            int64_t q_begin, int64_t q_end,
                            uint32_t* sel_out);

/// Rows whose period contains the instant `t` (`begin <= t < end`).
size_t SelectContains(const int64_t* begin, const int64_t* end, size_t n,
                      int64_t t, uint32_t* sel_out);

size_t SelectContainsRefine(const int64_t* begin, const int64_t* end,
                            const uint32_t* sel_in, size_t n_in, int64_t t,
                            uint32_t* sel_out);

/// Rows whose period end equals `key` — with `key == Chronon::kForeverRep`,
/// the current-state test.
size_t SelectEndEquals(const int64_t* end, size_t n, int64_t key,
                       uint32_t* sel_out);

size_t SelectEndEqualsRefine(const int64_t* end, const uint32_t* sel_in,
                             size_t n_in, int64_t key, uint32_t* sel_out);

/// Rows whose `live[i]` byte is nonzero (tombstone mask of a version-store
/// morsel).  The dense seed of a kernel chain over stored versions.
size_t SelectLive(const uint8_t* live, size_t n, uint32_t* sel_out);

/// Refine: liveness over the `n_in` candidates in `sel_in` (index-probe
/// candidates may reference tombstoned slots).
size_t SelectLiveRefine(const uint8_t* live, const uint32_t* sel_in,
                        size_t n_in, uint32_t* sel_out);

/// Pairwise period intersection against a fixed outer period: for each
/// candidate `i` (from `sel_in`, or the dense range `[0, n_in)` when
/// `sel_in` is null), computes `[max(o_begin, begin[i]), min(o_end, end[i]))`
/// into `out_begin/out_end` (indexed by output position) and keeps the row
/// iff the intersection is non-empty — exactly `Period::Intersect` followed
/// by the executor's drop-if-empty rule.  This is the cross-product/join
/// kernel: a pair exists exactly when both facts coexist.
size_t IntersectPeriods(const int64_t* begin, const int64_t* end,
                        const uint32_t* sel_in, size_t n_in, int64_t o_begin,
                        int64_t o_end, uint32_t* sel_out, int64_t* out_begin,
                        int64_t* out_end);

/// Bitemporal variant: intersects valid AND transaction periods against a
/// fixed outer pair in one pass, keeping a row only when both intersections
/// are non-empty.  One fused loop instead of two chained passes, so the two
/// compressed output-period arrays stay aligned by construction.
size_t IntersectBitemporal(const int64_t* v_begin, const int64_t* v_end,
                           const int64_t* t_begin, const int64_t* t_end,
                           const uint32_t* sel_in, size_t n_in,
                           int64_t ov_begin, int64_t ov_end, int64_t ot_begin,
                           int64_t ot_end, uint32_t* sel_out,
                           int64_t* out_v_begin, int64_t* out_v_end,
                           int64_t* out_t_begin, int64_t* out_t_end);

}  // namespace kernels
}  // namespace temporadb

#endif  // TEMPORADB_REL_KERNELS_H_
