#ifndef TEMPORADB_REL_AGGREGATE_H_
#define TEMPORADB_REL_AGGREGATE_H_

#include <string>
#include <vector>

#include "rel/relation.h"

namespace temporadb {

/// Aggregate functions (Quel's `count`, `sum`, `avg`, `min`, `max`,
/// `any`).
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax, kAny };

std::string_view AggFuncName(AggFunc f);

/// One aggregate in the output: `func(column)` named `as_name`.
struct AggSpec {
  AggFunc func;
  size_t column = 0;  ///< Ignored for kCount.
  std::string as_name;
};

/// Groups by the given columns and computes the aggregates per group.
/// With an empty `group_by`, produces one global row (0 rows in ⇒ a single
/// row of count 0 / NULL aggregates, SQL-style).
///
/// Aggregation collapses time: the result is a *static* rowset regardless
/// of the input's class.  For trend analysis over time (the paper's "how
/// did the number of faculty change over the last 5 years?"), slice first,
/// then aggregate per slice — see `examples/trend_analysis.cpp`.
Result<Rowset> Aggregate(const Rowset& input,
                         const std::vector<size_t>& group_by,
                         const std::vector<AggSpec>& aggs);

}  // namespace temporadb

#endif  // TEMPORADB_REL_AGGREGATE_H_
