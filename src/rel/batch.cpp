#include "rel/batch.h"

#include <cassert>

namespace temporadb {

void Batch::ReserveRows(size_t n) {
  for (auto& col : columns) col.reserve(n);
  if (has_valid) {
    valid_from.reserve(n);
    valid_to.reserve(n);
  }
  if (has_txn) {
    tt_start.reserve(n);
    tt_end.reserve(n);
  }
}

void Batch::Clear() {
  for (auto& col : columns) col.clear();
  valid_from.clear();
  valid_to.clear();
  tt_start.clear();
  tt_end.clear();
  num_rows_ = 0;
}

void Batch::AppendRow(const Row& row) {
  assert(row.values.size() == columns.size());
  assert(row.valid.has_value() == has_valid);
  assert(row.txn.has_value() == has_txn);
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].push_back(row.values[c]);
  }
  if (has_valid) {
    valid_from.push_back(row.valid->begin().days());
    valid_to.push_back(row.valid->end().days());
  }
  if (has_txn) {
    tt_start.push_back(row.txn->begin().days());
    tt_end.push_back(row.txn->end().days());
  }
  ++num_rows_;
}

void Batch::AppendRowFrom(const Batch& src, size_t i) {
  assert(src.width() == width());
  assert(src.has_valid == has_valid && src.has_txn == has_txn);
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].push_back(src.columns[c][i]);
  }
  if (has_valid) {
    valid_from.push_back(src.valid_from[i]);
    valid_to.push_back(src.valid_to[i]);
  }
  if (has_txn) {
    tt_start.push_back(src.tt_start[i]);
    tt_end.push_back(src.tt_end[i]);
  }
  ++num_rows_;
}

void Batch::AppendValuesFrom(const Batch& src, size_t i) {
  assert(src.width() == width());
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].push_back(src.columns[c][i]);
  }
}

void Batch::SetRowCount(size_t n) {
  num_rows_ = n;
#ifndef NDEBUG
  CheckInvariants();
#endif
}

Row Batch::ExtractRow(size_t i) const {
  Row row;
  row.values.reserve(columns.size());
  for (const auto& col : columns) row.values.push_back(col[i]);
  if (has_valid) row.valid = ValidAt(i);
  if (has_txn) row.txn = TxnAt(i);
  return row;
}

void Batch::Compact(const SelectionVector& sel, size_t n) {
  assert(n <= sel.size());
  for (auto& col : columns) {
    for (size_t k = 0; k < n; ++k) {
      // Guard the no-op move: self-move-assignment would empty the value.
      if (sel[k] != k) col[k] = std::move(col[sel[k]]);
    }
    col.resize(n);
  }
  if (has_valid) {
    for (size_t k = 0; k < n; ++k) {
      valid_from[k] = valid_from[sel[k]];
      valid_to[k] = valid_to[sel[k]];
    }
    valid_from.resize(n);
    valid_to.resize(n);
  }
  if (has_txn) {
    for (size_t k = 0; k < n; ++k) {
      tt_start[k] = tt_start[sel[k]];
      tt_end[k] = tt_end[sel[k]];
    }
    tt_start.resize(n);
    tt_end.resize(n);
  }
  num_rows_ = n;
}

void Batch::CheckInvariants() const {
  for (const auto& col : columns) {
    assert(col.size() == num_rows_);
    (void)col;
  }
  assert(valid_from.size() == (has_valid ? num_rows_ : 0));
  assert(valid_to.size() == (has_valid ? num_rows_ : 0));
  assert(tt_start.size() == (has_txn ? num_rows_ : 0));
  assert(tt_end.size() == (has_txn ? num_rows_ : 0));
}

}  // namespace temporadb
