#ifndef TEMPORADB_REL_RELATION_H_
#define TEMPORADB_REL_RELATION_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/temporal_class.h"
#include "common/result.h"
#include "rel/row.h"

namespace temporadb {

/// A materialized derived relation: the value type flowing between query
/// operators and returned to clients.
///
/// A rowset carries its *temporal class*, which determines which implicit
/// temporal columns its rows populate and which further operations are legal
/// on it — the paper's rule that "the result of a query on a static rollback
/// database is a pure static relation" (§4.2) while historical and temporal
/// queries derive relations "which may be used in further queries" of the
/// same kind (§4.3, §4.4).
class Rowset {
 public:
  Rowset() = default;
  Rowset(Schema schema, TemporalClass temporal_class,
         TemporalDataModel data_model = TemporalDataModel::kInterval)
      : schema_(std::move(schema)),
        temporal_class_(temporal_class),
        data_model_(data_model) {}

  const Schema& schema() const { return schema_; }
  TemporalClass temporal_class() const { return temporal_class_; }
  TemporalDataModel data_model() const { return data_model_; }

  bool has_valid_time() const { return SupportsValidTime(temporal_class_); }
  bool has_txn_time() const {
    return SupportsTransactionTime(temporal_class_);
  }

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& rows() { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row, checking it populates exactly the periods its class
  /// requires.
  Status AddRow(Row row);

  /// Renders in the visual style of the paper's figures (double bar before
  /// the DBMS-maintained temporal columns, grouped (from)/(to) and
  /// (start)/(end) sub-headers; event relations print a single "(at)").
  std::string Render(const std::string& title = "") const;

  /// Deterministic content equality (sorts copies; used by tests).
  static bool SameContent(const Rowset& a, const Rowset& b);

 private:
  Schema schema_;
  TemporalClass temporal_class_ = TemporalClass::kStatic;
  TemporalDataModel data_model_ = TemporalDataModel::kInterval;
  std::vector<Row> rows_;
};

}  // namespace temporadb

#endif  // TEMPORADB_REL_RELATION_H_
