#include "rel/cursor.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/strings.h"

namespace temporadb {

namespace {

class RowsetCursor final : public RowCursor {
 public:
  explicit RowsetCursor(const Rowset* input) : input_(input) {}

  Status OpenImpl() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<std::optional<Row>> NextImpl() override {
    if (pos_ >= input_->rows().size()) return std::optional<Row>();
    return std::optional<Row>(input_->rows()[pos_++]);
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  const Rowset* input_;
  size_t pos_ = 0;
};

class SelectCursor final : public RowCursor {
 public:
  SelectCursor(RowCursorPtr input, const Expr* pred)
      : input_(std::move(input)), pred_(pred) {}

  Status OpenImpl() override { return input_->Open(); }

  Result<std::optional<Row>> NextImpl() override {
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
      if (!row.has_value()) return row;
      TDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*pred_, row->values));
      if (keep) return row;
    }
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  RowCursorPtr input_;
  const Expr* pred_;
};

class ProjectCursor final : public RowCursor {
 public:
  ProjectCursor(RowCursorPtr input, const std::vector<ExprPtr>* exprs,
                std::vector<std::string> names)
      : input_(std::move(input)), exprs_(exprs), names_(std::move(names)) {}

  Status OpenImpl() override {
    if (exprs_->size() != names_.size()) {
      return Status::InvalidArgument("projection names/expressions mismatch");
    }
    TDB_RETURN_IF_ERROR(input_->Open());
    // Output attribute types: inferred from the first row, defaulting to
    // string for empty inputs (types are advisory on derived rowsets).
    TDB_ASSIGN_OR_RETURN(lookahead_, input_->Next());
    std::vector<Attribute> attrs;
    attrs.reserve(exprs_->size());
    for (size_t i = 0; i < exprs_->size(); ++i) {
      ValueType vt = ValueType::kString;
      if (lookahead_.has_value()) {
        TDB_ASSIGN_OR_RETURN(Value v, (*exprs_)[i]->Eval(lookahead_->values));
        if (!v.is_null()) vt = v.type();
      }
      attrs.push_back(Attribute{names_[i], Type(vt)});
    }
    TDB_ASSIGN_OR_RETURN(schema_, Schema::Make(std::move(attrs)));
    return Status::OK();
  }

  Result<std::optional<Row>> NextImpl() override {
    std::optional<Row> row;
    if (lookahead_.has_value()) {
      row = std::move(lookahead_);
      lookahead_.reset();
    } else {
      TDB_ASSIGN_OR_RETURN(row, input_->Next());
    }
    if (!row.has_value()) return row;
    Row projected;
    projected.valid = row->valid;
    projected.txn = row->txn;
    projected.values.reserve(exprs_->size());
    for (const ExprPtr& e : *exprs_) {
      TDB_ASSIGN_OR_RETURN(Value v, e->Eval(row->values));
      projected.values.push_back(std::move(v));
    }
    return std::optional<Row>(std::move(projected));
  }

  const Schema& SchemaImpl() const override { return schema_; }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  RowCursorPtr input_;
  const std::vector<ExprPtr>* exprs_;
  std::vector<std::string> names_;
  std::optional<Row> lookahead_;
  Schema schema_;
};

class UnionCursor final : public RowCursor {
 public:
  UnionCursor(RowCursorPtr a, RowCursorPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(a_->Open());
    TDB_RETURN_IF_ERROR(b_->Open());
    if (a_->schema() != b_->schema()) {
      return Status::InvalidArgument("union of incompatible schemas");
    }
    if (a_->temporal_class() != b_->temporal_class()) {
      return Status::InvalidArgument(StringPrintf(
          "union of %s and %s relations",
          std::string(TemporalClassName(a_->temporal_class())).c_str(),
          std::string(TemporalClassName(b_->temporal_class())).c_str()));
    }
    return Status::OK();
  }

  Result<std::optional<Row>> NextImpl() override {
    if (!a_done_) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, a_->Next());
      if (row.has_value()) return row;
      a_done_ = true;
    }
    return b_->Next();
  }

  const Schema& SchemaImpl() const override { return a_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return a_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override { return a_->data_model(); }

 private:
  RowCursorPtr a_;
  RowCursorPtr b_;
  bool a_done_ = false;
};

class DifferenceCursor final : public RowCursor {
 public:
  DifferenceCursor(RowCursorPtr a, RowCursorPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(a_->Open());
    TDB_RETURN_IF_ERROR(b_->Open());
    if (a_->schema() != b_->schema() ||
        a_->temporal_class() != b_->temporal_class()) {
      return Status::InvalidArgument("difference of incompatible relations");
    }
    // Pipeline breaker on the excluded side only: `b` is drained into a
    // set, `a` streams through.
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, b_->Next());
      if (!row.has_value()) break;
      exclude_.insert(std::move(*row));
    }
    return Status::OK();
  }

  Result<std::optional<Row>> NextImpl() override {
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, a_->Next());
      if (!row.has_value()) return row;
      if (!exclude_.contains(*row)) return row;
    }
  }

  const Schema& SchemaImpl() const override { return a_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return a_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override { return a_->data_model(); }

 private:
  RowCursorPtr a_;
  RowCursorPtr b_;
  std::set<Row> exclude_;
};

class DistinctCursor final : public RowCursor {
 public:
  explicit DistinctCursor(RowCursorPtr input) : input_(std::move(input)) {}

  Status OpenImpl() override { return input_->Open(); }

  Result<std::optional<Row>> NextImpl() override {
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
      if (!row.has_value()) return row;
      if (seen_.insert(*row).second) return row;
    }
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  RowCursorPtr input_;
  std::set<Row> seen_;
};

class SortCursor final : public RowCursor {
 public:
  SortCursor(RowCursorPtr input, std::vector<size_t> keys)
      : input_(std::move(input)), keys_(std::move(keys)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(input_->Open());
    for (size_t k : keys_) {
      if (k >= input_->schema().size()) {
        return Status::InvalidArgument("sort key index out of range");
      }
    }
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, input_->Next());
      if (!row.has_value()) break;
      rows_.push_back(std::move(*row));
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (size_t k : keys_) {
                         if (a.values[k] < b.values[k]) return true;
                         if (b.values[k] < a.values[k]) return false;
                       }
                       return a < b;
                     });
    return Status::OK();
  }

  Result<std::optional<Row>> NextImpl() override {
    if (pos_ >= rows_.size()) return std::optional<Row>();
    return std::optional<Row>(std::move(rows_[pos_++]));
  }

  const Schema& SchemaImpl() const override { return input_->schema(); }
  TemporalClass TemporalClassImpl() const override {
    return input_->temporal_class();
  }
  TemporalDataModel DataModelImpl() const override {
    return input_->data_model();
  }

 private:
  RowCursorPtr input_;
  std::vector<size_t> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class CrossProductCursor final : public RowCursor {
 public:
  CrossProductCursor(RowCursorPtr a, RowCursorPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Status OpenImpl() override {
    TDB_RETURN_IF_ERROR(a_->Open());
    TDB_RETURN_IF_ERROR(b_->Open());
    if (!HasMeetClass(a_->temporal_class(), b_->temporal_class())) {
      return Status::InvalidArgument(StringPrintf(
          "cross product of %s and %s relations: the temporal classes have "
          "no meet (one maintains only transaction time, the other only "
          "valid time), so every pairing would silently drop both time "
          "dimensions",
          std::string(TemporalClassName(a_->temporal_class())).c_str(),
          std::string(TemporalClassName(b_->temporal_class())).c_str()));
    }
    class_ = MeetClass(a_->temporal_class(), b_->temporal_class());
    want_valid_ = SupportsValidTime(class_);
    want_txn_ = SupportsTransactionTime(class_);
    schema_ = a_->schema().Concat(b_->schema());
    // Pipeline breaker on the inner side: `b` is buffered, `a` streams.
    while (true) {
      TDB_ASSIGN_OR_RETURN(std::optional<Row> row, b_->Next());
      if (!row.has_value()) break;
      inner_.push_back(std::move(*row));
    }
    return Status::OK();
  }

  Result<std::optional<Row>> NextImpl() override {
    while (true) {
      if (!outer_.has_value() || inner_pos_ >= inner_.size()) {
        TDB_ASSIGN_OR_RETURN(outer_, a_->Next());
        if (!outer_.has_value()) return std::optional<Row>();
        inner_pos_ = 0;
      }
      for (; inner_pos_ < inner_.size();) {
        const Row& rb = inner_[inner_pos_++];
        Row combined;
        if (want_valid_) {
          Period v = outer_->valid->Intersect(*rb.valid);
          if (v.IsEmpty()) continue;  // The facts never coexist in reality.
          combined.valid = v;
        }
        if (want_txn_) {
          Period t = outer_->txn->Intersect(*rb.txn);
          if (t.IsEmpty()) continue;  // Never co-stored.
          combined.txn = t;
        }
        combined.values = outer_->values;
        combined.values.insert(combined.values.end(), rb.values.begin(),
                               rb.values.end());
        return std::optional<Row>(std::move(combined));
      }
    }
  }

  const Schema& SchemaImpl() const override { return schema_; }
  TemporalClass TemporalClassImpl() const override { return class_; }
  // Matches the materializing operator: the product is rebuilt as an
  // interval rowset regardless of the operands' models.
  TemporalDataModel DataModelImpl() const override {
    return TemporalDataModel::kInterval;
  }

 private:
  RowCursorPtr a_;
  RowCursorPtr b_;
  Schema schema_;
  TemporalClass class_ = TemporalClass::kStatic;
  bool want_valid_ = false;
  bool want_txn_ = false;
  std::vector<Row> inner_;
  std::optional<Row> outer_;
  size_t inner_pos_ = 0;
};

}  // namespace

RowCursorPtr MakeRowsetCursor(const Rowset* input) {
  return std::make_unique<RowsetCursor>(input);
}

RowCursorPtr MakeSelectCursor(RowCursorPtr input, const Expr* pred) {
  return std::make_unique<SelectCursor>(std::move(input), pred);
}

RowCursorPtr MakeProjectCursor(RowCursorPtr input,
                               const std::vector<ExprPtr>* exprs,
                               std::vector<std::string> names) {
  return std::make_unique<ProjectCursor>(std::move(input), exprs,
                                         std::move(names));
}

RowCursorPtr MakeUnionCursor(RowCursorPtr a, RowCursorPtr b) {
  return std::make_unique<UnionCursor>(std::move(a), std::move(b));
}

RowCursorPtr MakeDifferenceCursor(RowCursorPtr a, RowCursorPtr b) {
  return std::make_unique<DifferenceCursor>(std::move(a), std::move(b));
}

RowCursorPtr MakeDistinctCursor(RowCursorPtr input) {
  return std::make_unique<DistinctCursor>(std::move(input));
}

RowCursorPtr MakeSortCursor(RowCursorPtr input, std::vector<size_t> keys) {
  return std::make_unique<SortCursor>(std::move(input), std::move(keys));
}

RowCursorPtr MakeCrossProductCursor(RowCursorPtr a, RowCursorPtr b) {
  return std::make_unique<CrossProductCursor>(std::move(a), std::move(b));
}

Result<Rowset> MaterializeCursor(RowCursor* cursor) {
  TDB_RETURN_IF_ERROR(cursor->Open());
  Rowset out(cursor->schema(), cursor->temporal_class(),
             cursor->data_model());
  while (true) {
    TDB_ASSIGN_OR_RETURN(std::optional<Row> row, cursor->Next());
    if (!row.has_value()) break;
    TDB_RETURN_IF_ERROR(out.AddRow(std::move(*row)));
  }
  return out;
}

}  // namespace temporadb
