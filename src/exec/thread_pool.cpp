#include "exec/thread_pool.h"

#include <algorithm>

namespace temporadb {
namespace exec {

namespace {

/// True while this thread is draining pool work — on a worker thread
/// always, on a caller thread while it participates in its own job.  A
/// nested ParallelFor (a task that itself tries to parallelize) runs
/// inline: a worker waiting for pool workers would deadlock the single-job
/// scheduler, and a participating caller already holds the job lock.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : size_(std::max<size_t>(num_threads, 1)),
      work_cv_(&mu_),
      done_cv_(&mu_) {
  workers_.reserve(size_ - 1);
  for (size_t i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::Drain(const std::function<void(size_t)>& fn, size_t n) {
  // Claim indices until the shared counter runs past the job; executing a
  // claimed index is this thread's responsibility alone, so `fn(i)` runs
  // exactly once per index.
  size_t done = 0;
  while (true) {
    size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
    ++done;
  }
  return done;
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  uint64_t seen_seq = 0;
  MutexLock lock(&mu_);
  while (true) {
    while (!(shutdown_ || (job_fn_ != nullptr && job_seq_ != seen_seq))) {
      work_cv_.Wait();
    }
    if (shutdown_) return;
    seen_seq = job_seq_;
    const std::function<void(size_t)>* fn = job_fn_;
    const size_t n = job_size_;
    ++active_;  // The caller retires the job only once every drainer left.
    lock.Unlock();
    size_t done = Drain(*fn, n);
    lock.Lock();
    pending_ -= done;
    --active_;
    if (pending_ == 0 && active_ == 0) done_cv_.SignalAll();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_pool_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One job at a time; concurrent callers queue here.
  MutexLock job_lock(&job_mu_);
  {
    MutexLock lock(&mu_);
    job_fn_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    pending_ = n;
    ++job_seq_;
  }
  work_cv_.SignalAll();
  // The caller participates as the size_-th execution lane.
  t_in_pool_worker = true;
  size_t done = Drain(fn, n);
  t_in_pool_worker = false;
  MutexLock lock(&mu_);
  pending_ -= done;
  // Wait until every index completed AND every worker left the drain loop:
  // a worker still inside Drain holds a pointer into this frame and shares
  // the claim counter, so the job cannot be retired (nor a new one
  // published) before the last drainer exits.
  while (!(pending_ == 0 && active_ == 0)) done_cv_.Wait();
  job_fn_ = nullptr;
  job_size_ = 0;
}

}  // namespace exec
}  // namespace temporadb
