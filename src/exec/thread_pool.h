#ifndef TEMPORADB_EXEC_THREAD_POOL_H_
#define TEMPORADB_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace temporadb {
namespace exec {

/// A fixed pool of worker threads for morsel-parallel query execution.
///
/// The pool runs one *job* at a time: `ParallelFor(n, fn)` invokes
/// `fn(i)` for every `i` in `[0, n)`, distributing indices across the
/// workers *and the calling thread* (so a pool of size `k` gives `k`-way
/// parallelism with `k - 1` spawned threads, and a pool of size 1 spawns
/// nothing and degenerates to a plain loop).  The call returns only after
/// every index has completed, with all worker writes visible to the caller
/// (release/acquire via the job mutex).
///
/// Concurrent `ParallelFor` calls from different threads are serialized on
/// an internal mutex; a nested call from inside a worker task runs inline
/// on that worker (re-entering the scheduler would deadlock).  Indices are
/// claimed from a shared atomic counter, so the *assignment* of indices to
/// threads is nondeterministic — callers that need deterministic output
/// must make `fn(i)` write only to slot `i` of a pre-sized result (the
/// morsel-merge discipline; see `parallel_scan.h`).
///
/// Lock hierarchy (DESIGN.md §11): `job_mu_` is acquired strictly before
/// `mu_`, and never the other way around; workers take only `mu_`.
class ThreadPool {
 public:
  /// `num_threads` is the parallelism degree; values below 1 are clamped
  /// to 1.  Spawns `num_threads - 1` workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool() TDB_EXCLUDES(job_mu_, mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The parallelism degree (workers + the calling thread).
  size_t size() const { return size_; }

  /// Runs `fn(i)` for every `i` in `[0, n)`; blocks until all complete.
  /// `fn` is invoked concurrently and must be safe to call from multiple
  /// threads at once.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      TDB_EXCLUDES(job_mu_, mu_);

 private:
  void WorkerLoop() TDB_EXCLUDES(mu_);
  /// Claims indices of the current job until exhausted; returns the number
  /// of indices this thread completed.  Lock-free: touches only the atomic
  /// claim counter and the job passed by value.
  size_t Drain(const std::function<void(size_t)>& fn, size_t n)
      TDB_EXCLUDES(mu_);

  const size_t size_;
  std::vector<std::thread> workers_;

  /// Serializes ParallelFor callers; ordered before `mu_`.
  Mutex job_mu_ TDB_ACQUIRED_BEFORE(mu_);

  Mutex mu_;
  CondVar work_cv_;  ///< Workers wait for a job / shutdown.
  CondVar done_cv_;  ///< The caller waits for completion.
  const std::function<void(size_t)>* job_fn_ TDB_GUARDED_BY(mu_) = nullptr;
  size_t job_size_ TDB_GUARDED_BY(mu_) = 0;
  std::atomic<size_t> next_index_{0};
  size_t pending_ TDB_GUARDED_BY(mu_) = 0;   ///< Indices not yet completed.
  size_t active_ TDB_GUARDED_BY(mu_) = 0;    ///< Workers inside the drain loop.
  uint64_t job_seq_ TDB_GUARDED_BY(mu_) = 0; ///< Bumped per job so workers see new work.
  bool shutdown_ TDB_GUARDED_BY(mu_) = false;
};

}  // namespace exec
}  // namespace temporadb

#endif  // TEMPORADB_EXEC_THREAD_POOL_H_
