#include "exec/parallel_scan.h"

#include <algorithm>

namespace temporadb {
namespace exec {

size_t MorselCount(size_t n, const MorselOptions& opts) {
  const size_t rows = std::max<size_t>(opts.morsel_rows, 1);
  return (n + rows - 1) / rows;
}

std::pair<size_t, size_t> MorselRange(size_t m, size_t n,
                                      const MorselOptions& opts) {
  const size_t rows = std::max<size_t>(opts.morsel_rows, 1);
  const size_t begin = m * rows;
  return {begin, std::min(begin + rows, n)};
}

}  // namespace exec
}  // namespace temporadb
