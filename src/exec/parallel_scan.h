#ifndef TEMPORADB_EXEC_PARALLEL_SCAN_H_
#define TEMPORADB_EXEC_PARALLEL_SCAN_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace temporadb {
namespace exec {

/// Morsel geometry for a parallel scan.  ~2k rows per morsel keeps each
/// unit of work large enough to amortize scheduling but small enough that
/// a skewed filter (one hot morsel) cannot serialize the scan.
struct MorselOptions {
  size_t morsel_rows = 2048;
};

/// Number of contiguous morsels covering a domain of `n` rows.
size_t MorselCount(size_t n, const MorselOptions& opts = {});

/// The half-open row range `[begin, end)` of morsel `m`.
std::pair<size_t, size_t> MorselRange(size_t m, size_t n,
                                      const MorselOptions& opts = {});

/// The morsel-parallel scan driver.
///
/// Splits the index domain `[0, n)` into contiguous morsels, runs
/// `probe(begin, end, &out)` for each morsel on the pool's workers (and
/// the calling thread), and merges the per-morsel outputs back **in morsel
/// order**.  Because morsels are contiguous and each worker appends to its
/// own morsel's vector, the merged sequence is bit-identical to what a
/// single thread running `probe(0, n, &out)` would produce — ascending
/// domain order, independent of thread count and scheduling.  That
/// determinism is load-bearing: the ablation harness diffs parallel
/// against sequential results row for row.
///
/// `probe` is invoked concurrently from multiple threads and must only
/// read shared state (the version store's immutable slots below the scan's
/// watermark) and write to its own `out`.
///
/// With a null `pool` (or a pool of size 1) the scan degenerates to a
/// sequential loop over the morsels on the calling thread — same output,
/// no threads.
///
/// The pool belongs to the writer's side of the house: it is driven by
/// writer-thread scans only.  Snapshot-isolated readers (`ReadSnapshot`)
/// never enter this driver — their scans are sequential on the reading
/// thread by design, so concurrent pinned readers cannot contend for (or
/// deadlock on) the single-job pool the writer is using.
template <typename Match, typename Probe>
std::vector<Match> ParallelScan(ThreadPool* pool, size_t n,
                                const Probe& probe,
                                MorselOptions opts = {}) {
  std::vector<Match> merged;
  if (n == 0) return merged;
  const size_t morsels = MorselCount(n, opts);
  if (pool == nullptr || pool->size() <= 1 || morsels <= 1) {
    probe(0, n, &merged);
    return merged;
  }
  std::vector<std::vector<Match>> per_morsel(morsels);
  pool->ParallelFor(morsels, [&](size_t m) {
    auto [begin, end] = MorselRange(m, n, opts);
    probe(begin, end, &per_morsel[m]);
  });
  size_t total = 0;
  for (const std::vector<Match>& part : per_morsel) total += part.size();
  merged.reserve(total);
  for (std::vector<Match>& part : per_morsel) {
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  return merged;
}

}  // namespace exec
}  // namespace temporadb

#endif  // TEMPORADB_EXEC_PARALLEL_SCAN_H_
