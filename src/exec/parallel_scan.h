#ifndef TEMPORADB_EXEC_PARALLEL_SCAN_H_
#define TEMPORADB_EXEC_PARALLEL_SCAN_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace temporadb {
namespace exec {

/// Morsel geometry for a parallel scan.  ~2k rows per morsel keeps each
/// unit of work large enough to amortize scheduling but small enough that
/// a skewed filter (one hot morsel) cannot serialize the scan.
struct MorselOptions {
  size_t morsel_rows = 2048;
};

/// Number of contiguous morsels covering a domain of `n` rows.
size_t MorselCount(size_t n, const MorselOptions& opts = {});

/// The half-open row range `[begin, end)` of morsel `m`.
std::pair<size_t, size_t> MorselRange(size_t m, size_t n,
                                      const MorselOptions& opts = {});

/// The morsel-parallel scan driver.
///
/// Splits the index domain `[0, n)` into contiguous morsels, runs
/// `probe(begin, end, &out)` for each morsel on the pool's workers (and
/// the calling thread), and merges the per-morsel outputs back **in morsel
/// order**.  Because morsels are contiguous and each worker appends to its
/// own morsel's vector, the merged sequence is bit-identical to what a
/// single thread running `probe(0, n, &out)` would produce — ascending
/// domain order, independent of thread count and scheduling.  That
/// determinism is load-bearing: the ablation harness diffs parallel
/// against sequential results row for row.
///
/// `probe` is invoked concurrently from multiple threads and must only
/// read shared state (the version store's immutable slots below the scan's
/// watermark) and write to its own `out`.
///
/// With a null `pool` (or a pool of size 1) the scan degenerates to a
/// sequential loop over the morsels on the calling thread — same output,
/// no threads.
///
/// The pool belongs to the writer's side of the house: it is driven by
/// writer-thread scans only.  Snapshot-isolated readers (`ReadSnapshot`)
/// never enter this driver — their scans are sequential on the reading
/// thread by design, so concurrent pinned readers cannot contend for (or
/// deadlock on) the single-job pool the writer is using.
template <typename Match, typename Probe>
std::vector<Match> ParallelScan(ThreadPool* pool, size_t n,
                                const Probe& probe,
                                MorselOptions opts = {}) {
  std::vector<Match> merged;
  if (n == 0) return merged;
  const size_t morsels = MorselCount(n, opts);
  if (pool == nullptr || pool->size() <= 1 || morsels <= 1) {
    probe(0, n, &merged);
    return merged;
  }
  std::vector<std::vector<Match>> per_morsel(morsels);
  pool->ParallelFor(morsels, [&](size_t m) {
    auto [begin, end] = MorselRange(m, n, opts);
    probe(begin, end, &per_morsel[m]);
  });
  size_t total = 0;
  for (const std::vector<Match>& part : per_morsel) total += part.size();
  merged.reserve(total);
  for (std::vector<Match>& part : per_morsel) {
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  return merged;
}

/// Slices a list of disjoint ascending row ranges (the survivors of
/// partition pruning) into contiguous chunks of at most `chunk_rows` rows,
/// restarting the chunk grid at every range boundary.  This is where morsel
/// geometry becomes partition-aligned: a pruned partition contributes no
/// range, hence no chunk, hence no morsel — it never enters the scheduler
/// at all.  With the single range `[0, n)` the chunk list is exactly the
/// classic `MorselRange` grid, so an unpruned scan keeps bit-identical
/// geometry (including batch boundaries) with the pre-partition code.
///
/// `Range` needs `.begin`/`.end` members and brace-init (`RowRange`).
template <typename Range>
std::vector<Range> RangeChunks(const std::vector<Range>& ranges,
                               size_t chunk_rows) {
  std::vector<Range> chunks;
  if (chunk_rows == 0) chunk_rows = 1;
  for (const Range& r : ranges) {
    for (size_t b = r.begin; b < r.end; b += chunk_rows) {
      chunks.push_back(Range{b, b + chunk_rows < r.end ? b + chunk_rows
                                                       : r.end});
    }
  }
  return chunks;
}

/// Range-restricted twin of `ParallelScan`: the domain is a list of
/// disjoint ascending row ranges instead of `[0, n)`.  Each chunk from
/// `RangeChunks(ranges, opts.morsel_rows)` is one morsel; `probe` runs per
/// chunk (concurrently on the pool's workers) and outputs merge back in
/// chunk order, so the result is bit-identical to a single thread probing
/// the chunks front to back — and, because chunk geometry is independent of
/// thread count, identical across every pool size including the sequential
/// fallback.
template <typename Match, typename Range, typename Probe>
std::vector<Match> ParallelScanRanges(ThreadPool* pool,
                                      const std::vector<Range>& ranges,
                                      const Probe& probe,
                                      MorselOptions opts = {}) {
  std::vector<Match> merged;
  const std::vector<Range> chunks = RangeChunks(ranges, opts.morsel_rows);
  if (chunks.empty()) return merged;
  if (pool == nullptr || pool->size() <= 1 || chunks.size() <= 1) {
    for (const Range& c : chunks) probe(c.begin, c.end, &merged);
    return merged;
  }
  std::vector<std::vector<Match>> per_chunk(chunks.size());
  pool->ParallelFor(chunks.size(), [&](size_t m) {
    probe(chunks[m].begin, chunks[m].end, &per_chunk[m]);
  });
  size_t total = 0;
  for (const std::vector<Match>& part : per_chunk) total += part.size();
  merged.reserve(total);
  for (std::vector<Match>& part : per_chunk) {
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  return merged;
}

}  // namespace exec
}  // namespace temporadb

#endif  // TEMPORADB_EXEC_PARALLEL_SCAN_H_
