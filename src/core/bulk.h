#ifndef TEMPORADB_CORE_BULK_H_
#define TEMPORADB_CORE_BULK_H_

#include <istream>
#include <ostream>
#include <string>

#include "core/database.h"

namespace temporadb {
namespace bulk {

/// CSV dialect and temporal-column mapping.
struct CsvOptions {
  char delimiter = ',';
  /// Import: the first row names the columns (required for schema mapping).
  /// Export: write a header row.
  bool header = true;
  /// For imports into valid-time relations, these name the CSV columns that
  /// carry the valid period (dates in any accepted format; empty cell or
  /// "inf" means open-ended).  They are not schema attributes.
  std::string valid_from_column = "valid_from";
  std::string valid_to_column = "valid_to";
  /// Event relations take a single instant column instead.
  std::string valid_at_column = "valid_at";
};

/// Imports CSV rows into `relation` as a single transaction (all or
/// nothing).  Header names map to schema attributes by exact name; columns
/// matching the temporal names of `options` feed the valid clause; any
/// other column is an error.  Missing attributes become NULL.  Values parse
/// via the attribute type (`Type::ParseValue`), so dates accept "12/15/82"
/// and "1982-12-15".
///
/// Returns the number of tuples appended.
Result<size_t> ImportCsv(Database* db, const std::string& relation,
                         std::istream& in, const CsvOptions& options = {});

/// Writes a rowset as CSV.  Temporal columns (when the rowset's class has
/// them) are appended as `valid_from`/`valid_to` (or `valid_at` for event
/// rowsets) and `txn_start`/`txn_end`, rendered as dates with "inf"/"-inf"
/// sentinels.  Fields containing the delimiter, quotes or newlines are
/// quoted with doubled-quote escaping.
Status ExportCsv(const Rowset& rows, std::ostream& out,
                 const CsvOptions& options = {});

/// Splits one CSV record (RFC-4180 quoting); exposed for tests.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter);

}  // namespace bulk
}  // namespace temporadb

#endif  // TEMPORADB_CORE_BULK_H_
