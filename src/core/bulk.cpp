#include "core/bulk.h"

#include <optional>

#include "common/strings.h"

namespace temporadb {
namespace bulk {

Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"' && current.empty()) {
      quoted = true;
      continue;
    }
    if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted CSV field: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

std::string QuoteCsv(const std::string& field, char delimiter) {
  bool needs_quoting =
      field.find(delimiter) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

Result<Chronon> ParseBound(const std::string& cell, Chronon fallback) {
  std::string_view t = Trim(cell);
  if (t.empty()) return fallback;
  TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(t));
  return d.chronon();
}

}  // namespace

Result<size_t> ImportCsv(Database* db, const std::string& relation,
                         std::istream& in, const CsvOptions& options) {
  if (!options.header) {
    return Status::InvalidArgument(
        "CSV imports require a header row to map columns to attributes");
  }
  TDB_ASSIGN_OR_RETURN(StoredRelation * rel, db->GetRelation(relation));
  const Schema& schema = rel->schema();
  const bool has_valid = SupportsValidTime(rel->temporal_class());
  const bool event = rel->data_model() == TemporalDataModel::kEvent;

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  TDB_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       SplitCsvLine(line, options.delimiter));

  // Map each CSV column to a schema attribute, or to a temporal role.
  constexpr int kValidFrom = -1, kValidTo = -2, kValidAt = -3;
  std::vector<int> mapping;
  for (const std::string& raw : header) {
    std::string name(Trim(raw));
    if (has_valid && !event && name == options.valid_from_column) {
      mapping.push_back(kValidFrom);
      continue;
    }
    if (has_valid && !event && name == options.valid_to_column) {
      mapping.push_back(kValidTo);
      continue;
    }
    if (has_valid && event && name == options.valid_at_column) {
      mapping.push_back(kValidAt);
      continue;
    }
    std::optional<size_t> idx = schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::InvalidArgument(StringPrintf(
          "CSV column '%s' matches no attribute of '%s' (schema %s)",
          name.c_str(), relation.c_str(), schema.ToString().c_str()));
    }
    mapping.push_back(static_cast<int>(*idx));
  }

  // Parse all rows up front so a late error aborts cleanly.
  struct ParsedRow {
    std::vector<Value> values;
    std::optional<Period> valid;
  };
  std::vector<ParsedRow> rows;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    TDB_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         SplitCsvLine(line, options.delimiter));
    if (fields.size() != mapping.size()) {
      return Status::InvalidArgument(StringPrintf(
          "CSV line %zu has %zu fields, header has %zu", line_number,
          fields.size(), mapping.size()));
    }
    ParsedRow row;
    row.values.assign(schema.size(), Value::Null());
    std::optional<Chronon> from, to, at;
    for (size_t c = 0; c < fields.size(); ++c) {
      int target = mapping[c];
      if (target == kValidFrom) {
        TDB_ASSIGN_OR_RETURN(Chronon b,
                             ParseBound(fields[c], Chronon::Beginning()));
        from = b;
      } else if (target == kValidTo) {
        TDB_ASSIGN_OR_RETURN(Chronon e,
                             ParseBound(fields[c], Chronon::Forever()));
        to = e;
      } else if (target == kValidAt) {
        TDB_ASSIGN_OR_RETURN(Chronon a,
                             ParseBound(fields[c], Chronon::Forever()));
        at = a;
      } else {
        Result<Value> v =
            schema.at(static_cast<size_t>(target)).type.ParseValue(fields[c]);
        if (!v.ok()) {
          return Status::InvalidArgument(StringPrintf(
              "CSV line %zu, column '%s': %s", line_number,
              header[c].c_str(), v.status().ToString().c_str()));
        }
        row.values[static_cast<size_t>(target)] = std::move(*v);
      }
    }
    if (at.has_value()) {
      row.valid = Period::At(*at);
    } else if (from.has_value() || to.has_value()) {
      Period p(from.value_or(Chronon::Beginning()),
               to.value_or(Chronon::Forever()));
      if (p.IsEmpty()) {
        return Status::InvalidArgument(StringPrintf(
            "CSV line %zu: empty valid period %s", line_number,
            p.ToString().c_str()));
      }
      row.valid = p;
    }
    rows.push_back(std::move(row));
  }

  // One transaction: all or nothing.
  TDB_RETURN_IF_ERROR(db->WithTransaction([&](Transaction* txn) -> Status {
    for (ParsedRow& row : rows) {
      TDB_RETURN_IF_ERROR(
          rel->Append(txn, std::move(row.values), row.valid));
    }
    return Status::OK();
  }));
  return rows.size();
}

Status ExportCsv(const Rowset& rows, std::ostream& out,
                 const CsvOptions& options) {
  const bool event = rows.data_model() == TemporalDataModel::kEvent;
  const char d = options.delimiter;
  if (options.header) {
    for (size_t i = 0; i < rows.schema().size(); ++i) {
      if (i > 0) out << d;
      out << QuoteCsv(rows.schema().at(i).name, d);
    }
    if (rows.has_valid_time()) {
      if (event) {
        out << d << options.valid_at_column;
      } else {
        out << d << options.valid_from_column << d
            << options.valid_to_column;
      }
    }
    if (rows.has_txn_time()) {
      out << d << "txn_start" << d << "txn_end";
    }
    out << "\n";
  }
  for (const Row& row : rows.rows()) {
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (i > 0) out << d;
      out << QuoteCsv(row.values[i].ToString(), d);
    }
    if (rows.has_valid_time()) {
      if (event) {
        out << d << row.valid->begin().ToString();
      } else {
        out << d << row.valid->begin().ToString() << d
            << row.valid->end().ToString();
      }
    }
    if (rows.has_txn_time()) {
      out << d << row.txn->begin().ToString() << d
          << row.txn->end().ToString();
    }
    out << "\n";
  }
  if (!out) return Status::IOError("CSV write failed");
  return Status::OK();
}

}  // namespace bulk
}  // namespace temporadb
