#ifndef TEMPORADB_CORE_PAPER_SCENARIO_H_
#define TEMPORADB_CORE_PAPER_SCENARIO_H_

#include "core/database.h"
#include "txn/clock.h"

namespace temporadb {
namespace paper {

/// Drivers that replay the paper's worked example (the `faculty` relation
/// and `promotion` event relation) through the full engine — DDL, TQuel DML,
/// and a manual clock set to the paper's 1977-1984 transaction dates.
/// Tests verify the resulting stored relations tuple-for-tuple against
/// Figures 2, 4, 6, 8 and 9; the figure benches print them.
///
/// Each builder expects `db` to have been opened with `clock` as its
/// transaction-time source.

/// Figure 2: the static `faculty` relation (Merrie full, Tom associate).
Status BuildStaticFaculty(Database* db);

/// Figures 3/4: the static rollback `faculty` relation.  Transactions:
///   08/25/77  append (Merrie, associate)
///   12/07/82  append (Tom, associate)
///   12/15/82  replace Merrie -> full
///   01/10/83  append (Mike, assistant)
///   02/25/84  delete Mike
Status BuildRollbackFaculty(Database* db, ManualClock* clock);

/// Figures 5/6: the historical `faculty` relation, with valid times as best
/// known now (corrections leave no trace).
Status BuildHistoricalFaculty(Database* db, ManualClock* clock);

/// Figures 7/8: the temporal (bitemporal) `faculty` relation.  Transactions:
///   08/25/77  append Merrie associate, valid from 09/01/77   (postactive)
///   12/01/82  append Tom full, valid from 12/05/82           (postactive)
///   12/07/82  replace Tom -> associate, valid from 12/05/82  (correction)
///   12/15/82  replace Merrie -> full, valid from 12/01/82    (retroactive)
///   01/10/83  append Mike assistant, valid from 01/01/83     (retroactive)
///   02/25/84  delete Mike, valid from 03/01/84               (postactive)
Status BuildTemporalFaculty(Database* db, ManualClock* clock);

/// Figure 9: the temporal event relation `promotion` with the user-defined
/// `effective` date attribute.
Status BuildPromotionEvents(Database* db, ManualClock* clock);

/// The abstract transaction script of Figures 3/5/7 on a relation `r(name,
/// value)`: (1) add three tuples, (2) add one, (3) delete one from the first
/// transaction and add another, and — for valid-time kinds — (4) remove an
/// erroneous tuple inserted by the first transaction.  `temporal_class`
/// picks the relation kind.
Status BuildCubeScenario(Database* db, ManualClock* clock,
                         TemporalClass temporal_class);

}  // namespace paper
}  // namespace temporadb

#endif  // TEMPORADB_CORE_PAPER_SCENARIO_H_
