#include "core/paper_scenario.h"

#include "common/strings.h"

namespace temporadb {
namespace paper {

namespace {

// Runs one TQuel source string, discarding the result.
Status Run(Database* db, const std::string& source) {
  Result<tquel::ExecResult> result = db->Execute(source);
  return result.ok() ? Status::OK() : result.status();
}

// Sets the manual clock to a paper date before the next transaction.
Status At(ManualClock* clock, const char* date) {
  return clock->SetDate(date);
}

}  // namespace

Status BuildStaticFaculty(Database* db) {
  TDB_RETURN_IF_ERROR(Run(db,
      "create static relation faculty (name = string, rank = string)"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Merrie\", rank = \"full\")"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Tom\", rank = \"associate\")"));
  return Status::OK();
}

Status BuildRollbackFaculty(Database* db, ManualClock* clock) {
  TDB_RETURN_IF_ERROR(Run(db,
      "create rollback relation faculty (name = string, rank = string)"));
  TDB_RETURN_IF_ERROR(Run(db, "range of f is faculty"));

  TDB_RETURN_IF_ERROR(At(clock, "08/25/77"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Merrie\", rank = \"associate\")"));

  TDB_RETURN_IF_ERROR(At(clock, "12/07/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Tom\", rank = \"associate\")"));

  TDB_RETURN_IF_ERROR(At(clock, "12/15/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "replace f (rank = \"full\") where f.name = \"Merrie\""));

  TDB_RETURN_IF_ERROR(At(clock, "01/10/83"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Mike\", rank = \"assistant\")"));

  TDB_RETURN_IF_ERROR(At(clock, "02/25/84"));
  TDB_RETURN_IF_ERROR(Run(db, "delete f where f.name = \"Mike\""));
  return Status::OK();
}

Status BuildHistoricalFaculty(Database* db, ManualClock* clock) {
  TDB_RETURN_IF_ERROR(Run(db,
      "create historical relation faculty (name = string, rank = string)"));
  TDB_RETURN_IF_ERROR(Run(db, "range of f is faculty"));

  // The same course of real-world events as the temporal scenario; in an
  // historical relation only the final knowledge survives (Figure 6).
  TDB_RETURN_IF_ERROR(At(clock, "08/25/77"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Merrie\", rank = \"associate\") "
      "valid from \"09/01/77\" to \"inf\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/01/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Tom\", rank = \"full\") "
      "valid from \"12/05/82\" to \"inf\""));

  // 12/07/82: the error is discovered; the correction leaves no trace.
  TDB_RETURN_IF_ERROR(At(clock, "12/07/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "replace f (rank = \"associate\") valid from \"12/05/82\" to \"inf\" "
      "where f.name = \"Tom\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/15/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "replace f (rank = \"full\") valid from \"12/01/82\" to \"inf\" "
      "where f.name = \"Merrie\""));

  TDB_RETURN_IF_ERROR(At(clock, "01/10/83"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Mike\", rank = \"assistant\") "
      "valid from \"01/01/83\" to \"inf\""));

  TDB_RETURN_IF_ERROR(At(clock, "02/25/84"));
  TDB_RETURN_IF_ERROR(Run(db,
      "delete f valid from \"03/01/84\" to \"inf\" where f.name = \"Mike\""));
  return Status::OK();
}

Status BuildTemporalFaculty(Database* db, ManualClock* clock) {
  TDB_RETURN_IF_ERROR(Run(db,
      "create temporal relation faculty (name = string, rank = string)"));
  TDB_RETURN_IF_ERROR(Run(db, "range of f is faculty"));

  TDB_RETURN_IF_ERROR(At(clock, "08/25/77"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Merrie\", rank = \"associate\") "
      "valid from \"09/01/77\" to \"inf\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/01/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Tom\", rank = \"full\") "
      "valid from \"12/05/82\" to \"inf\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/07/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "replace f (rank = \"associate\") valid from \"12/05/82\" to \"inf\" "
      "where f.name = \"Tom\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/15/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "replace f (rank = \"full\") valid from \"12/01/82\" to \"inf\" "
      "where f.name = \"Merrie\""));

  TDB_RETURN_IF_ERROR(At(clock, "01/10/83"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to faculty (name = \"Mike\", rank = \"assistant\") "
      "valid from \"01/01/83\" to \"inf\""));

  TDB_RETURN_IF_ERROR(At(clock, "02/25/84"));
  TDB_RETURN_IF_ERROR(Run(db,
      "delete f valid from \"03/01/84\" to \"inf\" where f.name = \"Mike\""));
  return Status::OK();
}

Status BuildPromotionEvents(Database* db, ManualClock* clock) {
  TDB_RETURN_IF_ERROR(Run(db,
      "create temporal event relation promotion "
      "(name = string, rank = string, effective = date)"));
  TDB_RETURN_IF_ERROR(Run(db, "range of p is promotion"));

  // valid-at is the date the promotion letter was signed; `effective` is
  // the user-defined date printed on the letter (uninterpreted by the
  // DBMS); the transaction date is when the event was recorded.
  TDB_RETURN_IF_ERROR(At(clock, "08/25/77"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to promotion (name = \"Merrie\", rank = \"associate\", "
      "effective = \"09/01/77\") valid at \"08/25/77\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/01/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to promotion (name = \"Tom\", rank = \"full\", "
      "effective = \"12/05/82\") valid at \"12/05/82\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/07/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "delete p valid at \"12/05/82\" where p.name = \"Tom\""));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to promotion (name = \"Tom\", rank = \"associate\", "
      "effective = \"12/05/82\") valid at \"12/07/82\""));

  TDB_RETURN_IF_ERROR(At(clock, "12/15/82"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to promotion (name = \"Merrie\", rank = \"full\", "
      "effective = \"12/01/82\") valid at \"12/11/82\""));

  TDB_RETURN_IF_ERROR(At(clock, "01/10/83"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to promotion (name = \"Mike\", rank = \"assistant\", "
      "effective = \"01/01/83\") valid at \"01/01/83\""));

  TDB_RETURN_IF_ERROR(At(clock, "02/25/84"));
  TDB_RETURN_IF_ERROR(Run(db,
      "append to promotion (name = \"Mike\", rank = \"left\", "
      "effective = \"03/01/84\") valid at \"02/25/84\""));
  return Status::OK();
}

Status BuildCubeScenario(Database* db, ManualClock* clock,
                         TemporalClass temporal_class) {
  std::string create = StringPrintf(
      "create %s relation r (name = string, value = int)",
      std::string(TemporalClassName(temporal_class)).c_str());
  TDB_RETURN_IF_ERROR(Run(db, create));
  TDB_RETURN_IF_ERROR(Run(db, "range of x is r"));

  const bool has_valid = SupportsValidTime(temporal_class);
  // Valid-time kinds date each fact from its insertion transaction, which
  // keeps the historical (Figure 5) and rollback (Figure 3) cubes visually
  // parallel.
  auto ins = [&](const char* name, int value) {
    return StringPrintf("append to r (name = \"%s\", value = %d)", name,
                        value);
  };

  // Transaction 1: three tuples (one of which, "c", is erroneous).
  TDB_RETURN_IF_ERROR(At(clock, "01/01/80"));
  TDB_RETURN_IF_ERROR(Run(db, ins("a", 1)));
  TDB_RETURN_IF_ERROR(Run(db, ins("b", 2)));
  TDB_RETURN_IF_ERROR(Run(db, ins("c", 3)));

  // Transaction 2: one tuple.
  TDB_RETURN_IF_ERROR(At(clock, "02/01/80"));
  TDB_RETURN_IF_ERROR(Run(db, ins("d", 4)));

  // Transaction 3: delete one first-transaction tuple, add another.
  TDB_RETURN_IF_ERROR(At(clock, "03/01/80"));
  TDB_RETURN_IF_ERROR(Run(db, "delete x where x.name = \"b\""));
  TDB_RETURN_IF_ERROR(Run(db, ins("e", 5)));

  // Transaction 4 (valid-time kinds only): the erroneous tuple "c" never
  // should have existed.  In an historical relation this is a physical
  // correction; in a temporal relation it is a logical deletion of the
  // tuple's entire validity, recorded append-only.
  if (has_valid) {
    TDB_RETURN_IF_ERROR(At(clock, "04/01/80"));
    if (temporal_class == TemporalClass::kHistorical) {
      TDB_RETURN_IF_ERROR(Run(db, "correct x where x.name = \"c\""));
    } else {
      TDB_RETURN_IF_ERROR(Run(db,
          "delete x valid from \"-inf\" to \"inf\" where x.name = \"c\""));
    }
  }
  return Status::OK();
}

}  // namespace paper
}  // namespace temporadb
