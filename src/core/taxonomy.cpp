#include "core/taxonomy.h"

#include "common/table_printer.h"

namespace temporadb {

const std::vector<LiteratureEntry>& Figure1Literature() {
  static const auto* entries = new std::vector<LiteratureEntry>{
      {"[Ariav & Morgan 1982]", "Time", "Yes", "Yes", "Representation"},
      {"[Ben-Zvi 1982]", "Registration", "Yes", "Yes", "Representation"},
      {"[Ben-Zvi 1982]", "Effective", "No", "Yes", "Reality"},
      {"[Clifford & Warren 1983]", "State", "No", "Yes", ""},
      {"[Copeland & Maier 1984]", "Transaction", "Yes", "Yes",
       "Representation"},
      {"[Copeland & Maier 1984]", "Event (1)", "No", "No", "Reality"},
      {"[Dadam et al. 1984] & [Lum et al. 1984]", "Physical", "(2)", "Yes",
       "Representation"},
      {"[Dadam et al. 1984] & [Lum et al. 1984]", "Logical (1)", "No", "No",
       "Reality"},
      {"[Jones et al. 1979] & [Jones & Mason 1980]", "Start/End", "(2)",
       "Yes", "Reality"},
      {"[Jones et al. 1979] & [Jones & Mason 1980]", "User Defined", "No",
       "No", "Reality"},
      {"[Mueller & Steinbauer 1983]", "Data-Valid-Time-From/To", "(3)", "Yes",
       "Representation (4)"},
      {"[Reed 1978]", "Start/End", "Yes", "Yes", "Representation"},
      {"[Snodgrass 1984]", "Valid Time", "No", "Yes", "Reality"},
  };
  return *entries;
}

const std::vector<std::string>& Figure1Footnotes() {
  static const auto* notes = new std::vector<std::string>{
      "(1) Not actually supported by the system",
      "(2) Can make corrections only",
      "(3) Can make changes only in the future",
      "(4) Reality is indicated only in the future",
  };
  return *notes;
}

const std::vector<TimeKindEntry>& Figure12TimeKinds() {
  static const auto* entries = new std::vector<TimeKindEntry>{
      {"Transaction", true, true, "Representation"},
      {"Valid", false, true, "Reality"},
      {"User-defined", false, false, "Reality"},
  };
  return *entries;
}

const std::vector<SystemSurveyEntry>& Figure13Systems() {
  static const auto* entries = new std::vector<SystemSurveyEntry>{
      {"[Ariav & Morgan 1982]", "MDM/DB", true, false, false},
      {"[Ben-Zvi 1982]", "TRM", true, true, false},
      {"[Bontempo 1983]", "QBE", false, false, true},
      {"[Breutmann et al. 1979]", "CSL", false, true, false},
      {"[Clifford & Warren 1983]", "IL_s", false, true, false},
      {"[Copeland & Maier 1984]", "GemStone", true, false, false},
      {"[Findler & Chen 1971]", "AMPPL-II", false, true, false},
      {"[Jones & Mason 1980]", "LEGOL 2.0", false, true, true},
      {"[Klopprogge 1981]", "TERM", false, true, false},
      {"[Lum et al. 1984]", "AIM", true, false, false},
      {"[Relational 1984]", "MicroINGRES", false, false, true},
      {"[Mueller & Steinbauer 1983]", "", true, false, false},
      {"[Overmyer & Stonebraker 1982]", "INGRES", false, false, true},
      {"[Reed 1978]", "SWALLOW", true, false, false},
      {"[Snodgrass 1985]", "TQuel", true, true, true},
      {"[Tandem 1983]", "ENFORM", false, false, true},
      {"[Wiederhold et al. 1975]", "TODS", false, true, false},
  };
  return *entries;
}

namespace {

constexpr TemporalClass kAllClasses[] = {
    TemporalClass::kStatic, TemporalClass::kRollback,
    TemporalClass::kHistorical, TemporalClass::kTemporal};

std::string Cap(std::string_view name) {
  std::string out(name);
  if (!out.empty()) out[0] = static_cast<char>(std::toupper(out[0]));
  return out;
}

}  // namespace

std::string RenderFigure10() {
  // Computed: a kind lands in the "Rollback" column iff it supports
  // transaction time and in the "Historical Queries" row iff it supports
  // valid time.
  const char* grid[2][2] = {{nullptr, nullptr}, {nullptr, nullptr}};
  static std::string names[4];
  int i = 0;
  for (TemporalClass c : kAllClasses) {
    names[i] = Cap(TemporalClassName(c));
    if (names[i] == "Rollback") names[i] = "Static Rollback";
    grid[SupportsValidTime(c) ? 1 : 0][SupportsTransactionTime(c) ? 1 : 0] =
        names[i].c_str();
    ++i;
  }
  TablePrinter printer;
  printer.AddColumn("");
  printer.AddColumn("No Rollback");
  printer.AddColumn("Rollback");
  printer.AddRow({"Static Queries", grid[0][0], grid[0][1]});
  printer.AddRow({"Historical Queries", grid[1][0], grid[1][1]});
  return printer.Render("Figure 10 : Types of Databases");
}

std::string RenderFigure11() {
  TablePrinter printer;
  printer.AddColumn("");
  printer.AddColumn("Transaction");
  printer.AddColumn("Valid");
  printer.AddColumn("User-defined");
  for (TemporalClass c : kAllClasses) {
    std::string name = Cap(TemporalClassName(c));
    if (name == "Rollback") name = "Static Rollback";
    // User-defined time is available in kinds that model reality (the
    // paper pairs it with valid time: "it is appropriate that they should
    // appear together", §4.3); temporadb stores date attributes in any
    // kind, but the taxonomy figure marks it for valid-time kinds.
    printer.AddRow({name, SupportsTransactionTime(c) ? "X" : "",
                    SupportsValidTime(c) ? "X" : "",
                    SupportsValidTime(c) ? "X" : ""});
  }
  return printer.Render("Figure 11 : Attributes of the New Kinds of Databases");
}

std::string RenderFigure12() {
  TablePrinter printer;
  printer.AddColumn("Terminology");
  printer.AddColumn("Append-Only");
  printer.AddColumn("Application Independent");
  printer.AddColumn("Representation vs. Reality");
  for (const TimeKindEntry& e : Figure12TimeKinds()) {
    printer.AddRow({e.terminology, e.append_only ? "Yes" : "No",
                    e.application_independent ? "Yes" : "No",
                    e.repr_vs_reality});
  }
  return printer.Render("Figure 12 : Attributes of the New Kinds of Time");
}

std::string RenderFigure1() {
  TablePrinter printer;
  printer.AddColumn("Reference");
  printer.AddColumn("Terminology");
  printer.AddColumn("Append-Only");
  printer.AddColumn("Application Independent");
  printer.AddColumn("Representation vs. Reality");
  for (const LiteratureEntry& e : Figure1Literature()) {
    printer.AddRow({e.reference, e.terminology, e.append_only,
                    e.app_independent, e.repr_vs_reality});
  }
  std::string out = printer.Render("Figure 1 : Types of Time");
  out += "Notes:\n";
  for (const std::string& note : Figure1Footnotes()) {
    out += "  " + note + "\n";
  }
  return out;
}

std::string RenderFigure13() {
  TablePrinter printer;
  printer.AddColumn("Reference");
  printer.AddColumn("System or Language");
  printer.AddColumn("Transaction Time");
  printer.AddColumn("Valid Time");
  printer.AddColumn("User-defined Time");
  for (const SystemSurveyEntry& e : Figure13Systems()) {
    printer.AddRow({e.reference, e.system, e.transaction_time ? "X" : "",
                    e.valid_time ? "X" : "", e.user_defined_time ? "X" : ""});
  }
  return printer.Render(
      "Figure 13 : Time Support in Existing or Proposed Systems");
}

}  // namespace temporadb
