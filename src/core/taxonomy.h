#ifndef TEMPORADB_CORE_TAXONOMY_H_
#define TEMPORADB_CORE_TAXONOMY_H_

#include <string>
#include <vector>

#include "catalog/temporal_class.h"

namespace temporadb {

/// Machine-readable forms of the paper's classification figures.  The
/// capability matrix itself (Figures 10/11) is computed from the
/// `temporal_class.h` predicates so that what is *printed* is what the
/// engine *enforces*; Figures 1, 12 and 13 are survey data transcribed from
/// the paper.

/// One row of Figure 1: how the prior literature characterized its time
/// attribute(s).
struct LiteratureEntry {
  const char* reference;
  const char* terminology;
  const char* append_only;      // "Yes", "No", or a footnote.
  const char* app_independent;
  const char* repr_vs_reality;  // "Representation" / "Reality" / "".
};

/// Figure 1, including its footnotes.
const std::vector<LiteratureEntry>& Figure1Literature();
const std::vector<std::string>& Figure1Footnotes();

/// One row of Figure 12: the attributes of the three new kinds of time.
struct TimeKindEntry {
  const char* terminology;        // "Transaction", "Valid", "User-defined".
  bool append_only;
  bool application_independent;
  const char* repr_vs_reality;
};

const std::vector<TimeKindEntry>& Figure12TimeKinds();

/// One row of Figure 13: time support in 1985's existing or proposed
/// systems.
struct SystemSurveyEntry {
  const char* reference;
  const char* system;
  bool transaction_time;
  bool valid_time;
  bool user_defined_time;
};

const std::vector<SystemSurveyEntry>& Figure13Systems();

/// Renders Figure 10 (the 2×2 kinds-of-databases table), computed from the
/// taxonomy predicates.
std::string RenderFigure10();

/// Renders Figure 11 (which times each database kind incorporates),
/// computed from the taxonomy predicates.
std::string RenderFigure11();

/// Renders Figure 12 from `Figure12TimeKinds`.
std::string RenderFigure12();

/// Renders Figure 1 / Figure 13 from the survey tables.
std::string RenderFigure1();
std::string RenderFigure13();

}  // namespace temporadb

#endif  // TEMPORADB_CORE_TAXONOMY_H_
