#include "core/database.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/coding.h"
#include "common/strings.h"
#include "storage/heap_file.h"
#include "tquel/parser.h"

namespace temporadb {

namespace {

// WAL record types.
constexpr uint32_t kWalTxnBegin = 1;
constexpr uint32_t kWalTxnCommit = 2;
constexpr uint32_t kWalVersionOp = 3;
constexpr uint32_t kWalCreateRelation = 4;
constexpr uint32_t kWalDropRelation = 5;

std::string EncodeVersionOp(uint64_t rel_id, const VersionOp& op) {
  std::string out;
  PutFixed64(&out, rel_id);
  PutFixed32(&out, static_cast<uint32_t>(op.kind));
  PutFixed64(&out, op.row);
  PutFixed64(&out, static_cast<uint64_t>(op.tt_end.days()));
  op.tuple.EncodeTo(&out);
  return out;
}

Result<std::pair<uint64_t, VersionOp>> DecodeVersionOp(std::string_view in) {
  uint64_t rel_id, row, tt_end;
  uint32_t kind;
  if (!GetFixed64(&in, &rel_id) || !GetFixed32(&in, &kind) ||
      !GetFixed64(&in, &row) || !GetFixed64(&in, &tt_end)) {
    return Status::Corruption("WAL: truncated version op");
  }
  VersionOp op;
  op.kind = static_cast<VersionOp::Kind>(kind);
  op.row = row;
  op.tt_end = Chronon(static_cast<int64_t>(tt_end));
  TDB_ASSIGN_OR_RETURN(op.tuple, BitemporalTuple::DecodeFrom(&in));
  return std::make_pair(rel_id, std::move(op));
}

std::string EncodeRelationInfo(const RelationInfo& info) {
  std::string out;
  PutFixed64(&out, info.id);
  PutLengthPrefixed(&out, info.name);
  info.schema.EncodeTo(&out);
  PutFixed32(&out, static_cast<uint32_t>(info.temporal_class));
  PutFixed32(&out, static_cast<uint32_t>(info.data_model));
  PutFixed32(&out, info.persistent ? 1 : 0);
  return out;
}

Result<RelationInfo> DecodeRelationInfo(std::string_view in) {
  RelationInfo info;
  std::string_view name;
  if (!GetFixed64(&in, &info.id) || !GetLengthPrefixed(&in, &name)) {
    return Status::Corruption("WAL: truncated relation info");
  }
  info.name = std::string(name);
  TDB_ASSIGN_OR_RETURN(info.schema, Schema::DecodeFrom(&in));
  uint32_t cls, model, persistent;
  if (!GetFixed32(&in, &cls) || !GetFixed32(&in, &model) ||
      !GetFixed32(&in, &persistent)) {
    return Status::Corruption("WAL: truncated relation flags");
  }
  info.temporal_class = static_cast<TemporalClass>(cls);
  info.data_model = static_cast<TemporalDataModel>(model);
  info.persistent = persistent != 0;
  return info;
}

constexpr const char* kWalPoisonedMessage =
    "WAL in failed state after an I/O error; reopen the database";

}  // namespace

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &default_clock_),
      fs_(options_.fs != nullptr ? options_.fs : FileSystem::Default()),
      txn_manager_(std::make_unique<TxnManager>(clock_)) {
  // Every store shares this database's MVCC state: commit publication,
  // close-sequence stamping, and the correction fence all run through it.
  options_.store_options.mvcc = &mvcc_;
  if (options_.store_options.parallel_scan) {
    size_t threads = options_.max_threads != 0
                         ? options_.max_threads
                         : std::thread::hardware_concurrency();
    pool_ = std::make_unique<exec::ThreadPool>(threads);
    // Every store created from here on (including by recovery) shares it.
    options_.store_options.exec_pool = pool_.get();
  }
}

Database::~Database() {
  if (active_txn_ != nullptr && active_txn_->IsActive()) {
    // Best-effort rollback from a destructor: there is no caller left to
    // receive the status, and recovery replays the WAL to the same state
    // regardless of whether this abort record lands.
    (void)Abort(active_txn_);
  }
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database(std::move(options)));
  if (!db->options_.path.empty()) {
    TDB_RETURN_IF_ERROR(db->InitPersistence());
    TDB_RETURN_IF_ERROR(db->Recover());
  }
  return db;
}

Status Database::InitPersistence() {
  // MakeDir tolerates an existing directory; going through the FileSystem
  // lets the fault layer track the root's entries from here on.
  return fs_->MakeDir(options_.path);
}

Status Database::Recover() {
  replaying_ = true;
  Status status = [&]() -> Status {
    // 1. Load the checkpoint named by CURRENT, if any.  The second line of
    // CURRENT is the WAL resume LSN: records below it were already folded
    // into the checkpoint, so replaying them would double-apply when a
    // crash separated the CURRENT publish from the WAL truncation.
    uint64_t resume_lsn = 0;
    Result<std::string> current =
        ReadFileToString(fs_, options_.path + "/CURRENT");
    if (!current.ok() && !current.status().IsNotFound()) {
      return current.status();
    }
    if (current.ok()) {
      std::string_view body = *current;
      size_t newline = body.find('\n');
      std::string dir(Trim(newline == std::string_view::npos
                               ? body
                               : body.substr(0, newline)));
      if (newline != std::string_view::npos) {
        std::string rest(Trim(body.substr(newline + 1)));
        if (!rest.empty()) {
          resume_lsn = static_cast<uint64_t>(
              std::strtoull(rest.c_str(), nullptr, 10));
        }
      }
      checkpoint_seq_ = 0;
      size_t dash = dir.rfind('-');
      if (dash != std::string::npos) {
        checkpoint_seq_ =
            static_cast<uint64_t>(std::strtoull(dir.c_str() + dash + 1,
                                                nullptr, 10));
      }
      TDB_RETURN_IF_ERROR(LoadCheckpoint(options_.path + "/" + dir));
    }
    // 2. Open the log.  The resume LSN doubles as a lower bound for new
    // LSNs, keeping the sequence monotone even if the log file was lost.
    TDB_ASSIGN_OR_RETURN(
        wal_, WriteAheadLog::Open(fs_, options_.path + "/wal.log",
                                  std::max<uint64_t>(resume_lsn, 1)));
    commit_queue_ = std::make_unique<CommitQueue>(wal_.get());
    // The log file's directory entry must be durable before any commit can
    // be acknowledged; a first commit whose fsync hit only the file would
    // otherwise vanish with the dirent.
    TDB_RETURN_IF_ERROR(fs_->SyncDir(options_.path));
    // 3. Replay the WAL on top, skipping records the checkpoint absorbed.
    return ReplayWal(resume_lsn);
  }();
  replaying_ = false;
  if (status.ok()) {
    // Make everything recovery rebuilt visible to snapshot readers: replay
    // stamps its transaction-time closes with commit sequence 1 (see
    // RawCloseTxn), so one publication covers them all.
    PublishMvcc(txn_manager_->Now());
  }
  return status;
}

Status Database::LoadCheckpoint(const std::string& dir) {
  TDB_ASSIGN_OR_RETURN(std::string blob,
                       ReadFileToString(fs_, dir + "/catalog.tdb"));
  std::string_view view = blob;
  uint64_t stored_sum;
  if (!GetFixed64(&view, &stored_sum) ||
      stored_sum != Checksum64(view.data(), view.size())) {
    return Status::Corruption("checkpoint catalog checksum mismatch");
  }
  TDB_ASSIGN_OR_RETURN(catalog_, Catalog::DecodeFrom(&view));
  // Partition sidecar: sealed epoch boundaries + synopses per relation, so
  // recovery reinstalls the partition directory instead of rescanning every
  // relation's history to rebuild it.  A checkpoint written before the
  // sidecar existed simply has none — the stores reseal at EndLoad.
  std::map<uint64_t, std::vector<PartitionSynopsis>> sealed_by_rel;
  {
    Result<std::string> sidecar =
        ReadFileToString(fs_, dir + "/partitions.tdb");
    if (!sidecar.ok() && !sidecar.status().IsNotFound()) {
      return sidecar.status();
    }
    if (sidecar.ok()) {
      std::string_view in = *sidecar;
      uint64_t sum;
      if (!GetFixed64(&in, &sum) || sum != Checksum64(in.data(), in.size())) {
        return Status::Corruption("checkpoint partition checksum mismatch");
      }
      uint32_t version;
      uint64_t n_rels;
      if (!GetFixed32(&in, &version) || version != 1 ||
          !GetFixed64(&in, &n_rels)) {
        return Status::Corruption("checkpoint partition header malformed");
      }
      for (uint64_t r = 0; r < n_rels; ++r) {
        uint64_t rel_id, n_parts;
        if (!GetFixed64(&in, &rel_id) || !GetFixed64(&in, &n_parts)) {
          return Status::Corruption("checkpoint partition entry malformed");
        }
        std::vector<PartitionSynopsis>& parts = sealed_by_rel[rel_id];
        parts.resize(n_parts);
        for (uint64_t p = 0; p < n_parts; ++p) {
          if (!PartitionSynopsis::DecodeFrom(&in, &parts[p])) {
            return Status::Corruption("checkpoint partition synopsis "
                                      "malformed");
          }
        }
      }
    }
  }
  for (const RelationInfo& info : catalog_.ListRelations()) {
    auto rel = MakeStoredRelation(info, options_.store_options);
    StoredRelation* ptr = rel.get();
    relations_[info.name] = std::move(rel);
    relations_by_id_[info.id] = ptr;
    WireObserver(ptr);
    // Load the relation's slots from its heap file.
    std::string heap_path = dir + StringPrintf("/rel-%llu.heap",
                                               (unsigned long long)info.id);
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<FilePager> pager,
                         FilePager::Open(fs_, heap_path));
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> heap,
                         HeapFile::Open(std::move(pager)));
    ptr->store()->BeginLoad();
    Status scan = heap->Scan([&](RecordId, Slice record) -> Status {
      std::string_view in = record.view();
      if (in.empty()) return Status::Corruption("empty checkpoint record");
      bool live = in[0] != 0;
      in.remove_prefix(1);
      if (live) {
        TDB_ASSIGN_OR_RETURN(BitemporalTuple tuple,
                             BitemporalTuple::DecodeFrom(&in));
        // Transaction time must never regress across recovery, even when
        // the checkpoint truncated the WAL records that carried the
        // original timestamps.
        if (tuple.txn.begin().IsFinite()) {
          txn_manager_->ObserveRecoveredTimestamp(tuple.txn.begin());
        }
        if (tuple.txn.end().IsFinite()) {
          txn_manager_->ObserveRecoveredTimestamp(tuple.txn.end());
        }
        ptr->store()->LoadSlot(std::move(tuple));
      } else {
        ptr->store()->LoadSlot(std::nullopt);
      }
      return Status::OK();
    });
    TDB_RETURN_IF_ERROR(scan);
    auto it = sealed_by_rel.find(info.id);
    if (it != sealed_by_rel.end()) {
      TDB_RETURN_IF_ERROR(
          ptr->store()->InstallSealedPartitions(std::move(it->second)));
    }
    ptr->store()->EndLoad();
  }
  return Status::OK();
}

Status Database::ReplayWal(uint64_t from_lsn) {
  // Buffer ops per transaction; apply on commit.  DDL records are applied
  // immediately (they were logged post-commit of the DDL itself).
  std::map<uint64_t, std::vector<std::pair<uint64_t, VersionOp>>> pending;
  uint64_t open_txn = 0;
  return wal_->Replay(from_lsn, [&](const WalRecord& rec) -> Status {
    std::string_view payload = rec.payload;
    switch (rec.type) {
      case kWalTxnBegin: {
        uint64_t txn_id, ts;
        if (!GetFixed64(&payload, &txn_id) || !GetFixed64(&payload, &ts)) {
          return Status::Corruption("WAL: bad txn-begin");
        }
        open_txn = txn_id;
        pending[txn_id].clear();
        txn_manager_->ObserveRecoveredTimestamp(
            Chronon(static_cast<int64_t>(ts)));
        return Status::OK();
      }
      case kWalVersionOp: {
        TDB_ASSIGN_OR_RETURN(auto decoded, DecodeVersionOp(payload));
        pending[open_txn].push_back(std::move(decoded));
        return Status::OK();
      }
      case kWalTxnCommit: {
        uint64_t txn_id;
        if (!GetFixed64(&payload, &txn_id)) {
          return Status::Corruption("WAL: bad txn-commit");
        }
        auto it = pending.find(txn_id);
        if (it == pending.end()) return Status::OK();
        for (const auto& [rel_id, op] : it->second) {
          auto rel_it = relations_by_id_.find(rel_id);
          if (rel_it == relations_by_id_.end()) {
            return Status::Corruption(StringPrintf(
                "WAL references unknown relation id %llu",
                (unsigned long long)rel_id));
          }
          TDB_RETURN_IF_ERROR(rel_it->second->store()->ApplyReplay(op));
        }
        pending.erase(it);
        return Status::OK();
      }
      case kWalCreateRelation: {
        TDB_ASSIGN_OR_RETURN(RelationInfo info, DecodeRelationInfo(payload));
        TDB_ASSIGN_OR_RETURN(
            RelationInfo created,
            catalog_.CreateRelation(info.name, info.schema,
                                    info.temporal_class, info.data_model,
                                    info.persistent));
        (void)created;
        auto rel = MakeStoredRelation(info, options_.store_options);
        StoredRelation* ptr = rel.get();
        relations_[info.name] = std::move(rel);
        relations_by_id_[info.id] = ptr;
        WireObserver(ptr);
        return Status::OK();
      }
      case kWalDropRelation: {
        std::string_view name;
        if (!GetLengthPrefixed(&payload, &name)) {
          return Status::Corruption("WAL: bad drop-relation");
        }
        Result<RelationInfo> info = catalog_.GetRelation(name);
        if (info.ok()) {
          relations_by_id_.erase(info->id);
          relations_.erase(std::string(name));
          // GetRelation just proved the entry exists, and DropRelation's
          // only failure mode is NotFound.
          (void)catalog_.DropRelation(name);
        }
        return Status::OK();
      }
      default:
        return Status::Corruption("WAL: unknown record type");
    }
  });
}

Status Database::LogDdl(uint32_t type, const std::string& payload) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  // The queue rewinds the record on failure (so a later successful sync
  // cannot persist a DDL the caller was told failed) and poisons the log.
  std::vector<WalBatchEntry> batch(1);
  batch[0].type = type;
  batch[0].payload = payload;
  return commit_queue_->Commit(batch, /*sync=*/true);
}

void Database::WireObserver(StoredRelation* rel) {
  uint64_t id = rel->info().id;
  rel->store()->set_observer([this, id](const VersionOp& op) {
    if (wal_ == nullptr || replaying_) return;
    redo_buffer_.emplace_back(id, op);
  });
}

Result<RelationInfo> Database::CreateRelation(const std::string& name,
                                              Schema schema,
                                              TemporalClass temporal_class,
                                              TemporalDataModel data_model) {
  if (!replaying_ &&
      mvcc_.active_snapshots.load(std::memory_order_seq_cst) != 0) {
    return Status::FailedPrecondition(
        "DDL while read snapshots are pinned; release all snapshots first");
  }
  TDB_ASSIGN_OR_RETURN(
      RelationInfo info,
      catalog_.CreateRelation(name, std::move(schema), temporal_class,
                              data_model, !options_.path.empty()));
  auto rel = MakeStoredRelation(info, options_.store_options);
  StoredRelation* ptr = rel.get();
  relations_[name] = std::move(rel);
  relations_by_id_[info.id] = ptr;
  WireObserver(ptr);
  TDB_RETURN_IF_ERROR(LogDdl(kWalCreateRelation, EncodeRelationInfo(info)));
  return info;
}

Status Database::DropRelation(const std::string& name) {
  if (!replaying_ &&
      mvcc_.active_snapshots.load(std::memory_order_seq_cst) != 0) {
    return Status::FailedPrecondition(
        "DDL while read snapshots are pinned; release all snapshots first");
  }
  TDB_ASSIGN_OR_RETURN(RelationInfo info, catalog_.GetRelation(name));
  TDB_RETURN_IF_ERROR(catalog_.DropRelation(name));
  relations_by_id_.erase(info.id);
  relations_.erase(name);
  // Drop any ranges over it.
  for (auto it = ranges_.begin(); it != ranges_.end();) {
    if (it->second == name) {
      it = ranges_.erase(it);
    } else {
      ++it;
    }
  }
  std::string payload;
  PutLengthPrefixed(&payload, name);
  return LogDdl(kWalDropRelation, payload);
}

Result<StoredRelation*> Database::GetRelationInternal(std::string_view name) {
  auto it = relations_.find(std::string(name));
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + std::string(name));
  }
  return it->second.get();
}

Result<StoredRelation*> Database::GetRelation(std::string_view name) {
  return GetRelationInternal(name);
}

std::vector<RelationInfo> Database::ListRelations() const {
  return catalog_.ListRelations();
}

Status Database::CreateFromStmt(const tquel::CreateStmt& stmt) {
  std::vector<Attribute> attrs;
  for (const auto& [attr_name, type_name] : stmt.attributes) {
    TDB_ASSIGN_OR_RETURN(Type type, Type::ParseQuelType(type_name));
    attrs.push_back(Attribute{attr_name, type});
  }
  TDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  TDB_ASSIGN_OR_RETURN(RelationInfo info,
                       CreateRelation(stmt.name, std::move(schema),
                                      stmt.temporal_class, stmt.data_model));
  (void)info;
  return Status::OK();
}

tquel::EvalContext Database::MakeEvalContext(Transaction* txn) {
  tquel::EvalContext ctx;
  ctx.get_relation = [this](std::string_view name) {
    return GetRelationInternal(name);
  };
  ctx.create_relation = [this](const tquel::CreateStmt& stmt) {
    return CreateFromStmt(stmt);
  };
  ctx.drop_relation = [this](std::string_view name) {
    return DropRelation(std::string(name));
  };
  ctx.ranges = &ranges_;
  ctx.derived = &derived_;
  ctx.txn_manager = txn_manager_.get();
  ctx.txn = txn;
  return ctx;
}

namespace {

bool IsDml(const tquel::Statement& stmt) {
  return std::holds_alternative<tquel::AppendStmt>(stmt) ||
         std::holds_alternative<tquel::DeleteStmt>(stmt) ||
         std::holds_alternative<tquel::ReplaceStmt>(stmt) ||
         std::holds_alternative<tquel::CorrectStmt>(stmt);
}

}  // namespace

Result<tquel::ExecResult> Database::Execute(std::string_view source) {
  TDB_ASSIGN_OR_RETURN(std::vector<tquel::Statement> stmts,
                       tquel::Parse(source));
  if (stmts.empty()) {
    return Status::InvalidArgument("no statement to execute");
  }
  tquel::ExecResult last;
  for (const tquel::Statement& stmt : stmts) {
    // Transaction control lives here: the facade owns Begin/Commit/Abort.
    if (std::holds_alternative<tquel::BeginTxnStmt>(stmt)) {
      TDB_ASSIGN_OR_RETURN(Transaction * txn, Begin());
      (void)txn;
      last = tquel::ExecResult{};
      last.message = "transaction started";
      continue;
    }
    if (std::holds_alternative<tquel::CommitStmt>(stmt)) {
      if (active_txn_ == nullptr) {
        return Status::FailedPrecondition("no active transaction to commit");
      }
      TDB_RETURN_IF_ERROR(Commit(active_txn_));
      last = tquel::ExecResult{};
      last.message = "committed";
      continue;
    }
    if (std::holds_alternative<tquel::AbortStmt>(stmt)) {
      if (active_txn_ == nullptr) {
        return Status::FailedPrecondition("no active transaction to abort");
      }
      TDB_RETURN_IF_ERROR(Abort(active_txn_));
      last = tquel::ExecResult{};
      last.message = "aborted";
      continue;
    }
    if (IsDml(stmt) && active_txn_ == nullptr) {
      // Auto-commit: the statement is its own transaction.
      TDB_ASSIGN_OR_RETURN(Transaction * txn, Begin());
      tquel::EvalContext ctx = MakeEvalContext(txn);
      Result<tquel::ExecResult> result = tquel::Execute(stmt, ctx);
      if (!result.ok()) {
        // The statement's own error is what the caller must see; a
        // secondary rollback failure would only mask it.
        (void)Abort(txn);
        return result.status();
      }
      TDB_RETURN_IF_ERROR(Commit(txn));
      last = std::move(result).value();
    } else {
      tquel::EvalContext ctx = MakeEvalContext(active_txn_);
      TDB_ASSIGN_OR_RETURN(last, tquel::Execute(stmt, ctx));
    }
  }
  return last;
}

Result<Rowset> Database::Query(std::string_view source) {
  TDB_ASSIGN_OR_RETURN(tquel::ExecResult result, Execute(source));
  if (result.kind != tquel::ExecResult::Kind::kRows) {
    return Status::InvalidArgument("statement did not produce rows");
  }
  return std::move(result.rows);
}

Result<Rowset> Database::GetDerived(const std::string& name) const {
  auto it = derived_.find(name);
  if (it == derived_.end()) {
    return Status::NotFound("no derived relation named '" + name + "'");
  }
  return it->second;
}

Result<Transaction*> Database::Begin() {
  TDB_ASSIGN_OR_RETURN(Transaction * txn, txn_manager_->Begin());
  active_txn_ = txn;
  redo_buffer_.clear();
  return txn;
}

Status Database::Commit(Transaction* txn) {
  if (txn != active_txn_) {
    return Status::InvalidArgument("commit of a non-active transaction");
  }
  if (wal_ != nullptr && !redo_buffer_.empty()) {
    // The whole transaction goes to the group-commit queue as one batch:
    // the leader of its barrier appends it contiguously and syncs once for
    // every batch sharing the barrier.  On failure the queue rewinds the
    // barrier (so a later successful sync cannot make these records durable
    // behind the caller's back) and poisons itself — a failed fsync may
    // have persisted an unknown prefix, so nothing more can be trusted
    // until reopen rescans the file.  Here the commit was never
    // acknowledged, so undo the in-memory effects.
    std::vector<WalBatchEntry> batch;
    batch.reserve(redo_buffer_.size() + 2);
    std::string begin_payload;
    PutFixed64(&begin_payload, txn->id());
    PutFixed64(&begin_payload,
               static_cast<uint64_t>(txn->timestamp().days()));
    batch.push_back({kWalTxnBegin, std::move(begin_payload)});
    for (const auto& [rel_id, op] : redo_buffer_) {
      batch.push_back({kWalVersionOp, EncodeVersionOp(rel_id, op)});
    }
    std::string commit_payload;
    PutFixed64(&commit_payload, txn->id());
    batch.push_back({kWalTxnCommit, std::move(commit_payload)});
    Status wal_status = commit_queue_->Commit(batch, options_.sync_commits);
    if (!wal_status.ok()) {
      // Report the WAL failure, not any secondary rollback error: the
      // caller must learn the commit did not become durable.
      (void)txn_manager_->Abort(txn);
      // The undo of any in-place correction has run; lower its fence.
      mvcc_.EndCorrections();
      redo_buffer_.clear();
      active_txn_ = nullptr;
      return wal_status;
    }
  }
  redo_buffer_.clear();
  const Chronon commit_ts = txn->timestamp();
  Status s = txn_manager_->Commit(txn);
  active_txn_ = nullptr;
  if (s.ok()) {
    // The transaction's effects are durable (or this is an in-memory
    // database); publish them to snapshot readers and lower any correction
    // fence it raised.  Unconditional: read-only and DDL-adjacent commits
    // publish too, keeping pins anchored to the latest commit.
    PublishMvcc(commit_ts);
    mvcc_.EndCorrections();
  }
  return s;
}

Status Database::Abort(Transaction* txn) {
  if (txn != active_txn_) {
    return Status::InvalidArgument("abort of a non-active transaction");
  }
  Status s = txn_manager_->Abort(txn);
  // Only after the undo has run: undoing a correction is itself an
  // in-place rewrite, so its fence must stay up until here.
  mvcc_.EndCorrections();
  // Clear after the undo has run: the store observer records the undo's
  // version ops too, and they must not leak into the next transaction.
  redo_buffer_.clear();
  active_txn_ = nullptr;
  return s;
}

Status Database::WithTransaction(
    const std::function<Status(Transaction*)>& fn) {
  TDB_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  Status s = fn(txn);
  if (!s.ok()) {
    // fn's error is the one the caller asked about; the rollback is a
    // best-effort cleanup whose failure would only mask it.
    (void)Abort(txn);
    return s;
  }
  return Commit(txn);
}

Status Database::Checkpoint(bool compact) {
  if (wal_ == nullptr) return Status::OK();
  if (commit_queue_->poisoned()) {
    return Status::FailedPrecondition(kWalPoisonedMessage);
  }
  if (active_txn_ != nullptr && active_txn_->IsActive()) {
    return Status::FailedPrecondition(
        "cannot checkpoint with an active transaction");
  }
  if (compact) {
    // Safe exactly here: no transaction is active and the WAL records that
    // reference the old row ids are truncated below.  Compaction renumbers
    // rows in place, so it additionally requires that no read snapshot is
    // pinned — the correction fence enforces that and keeps new pins out
    // until the rewrite is complete.  Compaction is an opportunistic space
    // optimisation — a relation that declines (e.g. a temporal class that
    // must keep its history) leaves the checkpoint correct, just larger.
    TDB_RETURN_IF_ERROR(mvcc_.BeginCorrection());
    for (const auto& [name, rel] : relations_) {
      (void)rel->store()->CompactTombstones();
    }
    mvcc_.EndCorrections();
  }
  uint64_t seq = checkpoint_seq_ + 1;
  std::string dir_name = StringPrintf("ckpt-%llu", (unsigned long long)seq);
  std::string dir = options_.path + "/" + dir_name;
  TDB_RETURN_IF_ERROR(RemoveDirRecursive(fs_, dir));  // Stale partial attempt.
  TDB_RETURN_IF_ERROR(fs_->MakeDir(dir));
  // Catalog.
  std::string payload;
  catalog_.EncodeTo(&payload);
  std::string blob;
  PutFixed64(&blob, Checksum64(payload.data(), payload.size()));
  blob += payload;
  TDB_RETURN_IF_ERROR(WriteFileDurable(fs_, dir + "/catalog.tdb", blob));
  // Relations.
  for (const auto& [name, rel] : relations_) {
    std::string heap_path = dir + StringPrintf(
        "/rel-%llu.heap", (unsigned long long)rel->info().id);
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<FilePager> pager,
                         FilePager::Open(fs_, heap_path));
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> heap,
                         HeapFile::Open(std::move(pager)));
    Status status = Status::OK();
    rel->store()->ForEachSlot([&](RowId, const BitemporalTuple* tuple) {
      if (!status.ok()) return;
      std::string record;
      record.push_back(tuple != nullptr ? 1 : 0);
      if (tuple != nullptr) tuple->EncodeTo(&record);
      Result<RecordId> id = heap->Append(record);
      if (!id.ok()) status = id.status();
    });
    TDB_RETURN_IF_ERROR(status);
    // Flush fsyncs the heap's pages; the SyncDir below persists its
    // directory entry.
    TDB_RETURN_IF_ERROR(heap->Flush());
  }
  // Partition sidecar: the sealed epoch directory of every relation, so
  // recovery reinstalls partitions (and their synopses) instead of
  // rescanning each relation's history.  Row ids in the heap are positional
  // and the heap is written in row order, so the serialized boundaries keep
  // meaning the same rows after reload.
  {
    std::string parts;
    PutFixed32(&parts, 1);  // Format version.
    PutFixed64(&parts, relations_.size());
    for (const auto& [name, rel] : relations_) {
      const VersionStore* store = rel->store();
      PutFixed64(&parts, rel->info().id);
      PutFixed64(&parts, store->sealed_partition_count());
      for (size_t i = 0; i < store->sealed_partition_count(); ++i) {
        store->sealed_partition(i).EncodeTo(&parts);
      }
    }
    std::string sidecar;
    PutFixed64(&sidecar, Checksum64(parts.data(), parts.size()));
    sidecar += parts;
    TDB_RETURN_IF_ERROR(
        WriteFileDurable(fs_, dir + "/partitions.tdb", sidecar));
  }
  // Every file inside ckpt-N must be durable *and findable* before CURRENT
  // can name the directory.
  TDB_RETURN_IF_ERROR(fs_->SyncDir(dir));
  // Publish.  CURRENT carries the WAL resume LSN: every record currently
  // in the log is below it, so even if the truncation that follows never
  // reaches the disk, recovery will not replay stale records on top of
  // this checkpoint.
  std::string current = dir_name + "\n" +
                        StringPrintf("%llu", (unsigned long long)
                                     wal_->next_lsn()) + "\n";
  TDB_RETURN_IF_ERROR(
      WriteFileDurable(fs_, options_.path + "/CURRENT", current));
  // Only after CURRENT is durable may the log be emptied; the reverse
  // order would drop committed transactions if the crash landed between.
  TDB_RETURN_IF_ERROR(wal_->Truncate());
  if (checkpoint_seq_ > 0) {
    std::string old_dir = options_.path +
                          StringPrintf("/ckpt-%llu",
                                       (unsigned long long)checkpoint_seq_);
    // Garbage collection of the superseded checkpoint: CURRENT already
    // points at ckpt-N, so a leftover ckpt-(N-1) is unreferenced disk
    // space, not a correctness problem.  The next checkpoint retries.
    (void)RemoveDirRecursive(fs_, old_dir);
  }
  checkpoint_seq_ = seq;
  return Status::OK();
}

uint64_t Database::WalBytes() const {
  if (wal_ == nullptr) return 0;
  Result<uint64_t> size = wal_->SizeBytes();
  return size.ok() ? *size : 0;
}

void Database::PublishMvcc(Chronon ts) {
  // Seqlock write side: odd word while the watermarks are in flux.  A
  // reader capturing a pin retries until it sees one even word across its
  // whole capture, so all watermarks plus commit_seq/last_commit_ts come
  // from the same publication.
  mvcc_.publish_word.fetch_add(1, std::memory_order_seq_cst);
  for (const auto& [name, rel] : relations_) {
    rel->store()->PublishCommittedRows();
  }
  mvcc_.commit_seq.fetch_add(1, std::memory_order_release);
  if (ts.IsFinite()) {
    mvcc_.last_commit_ts.store(ts.days(), std::memory_order_release);
  }
  mvcc_.publish_word.fetch_add(1, std::memory_order_seq_cst);
}

Result<ReadSnapshot> Database::BeginReadSnapshot() {
  // Bounded so a caller on the writer thread, between a correction and its
  // commit, gets an error instead of a deadlock (the fence it is waiting
  // out is its own).
  for (int attempt = 0; attempt < (1 << 16); ++attempt) {
    // Register *before* checking the fence: BeginCorrection raises its flag
    // and then checks this counter, so (seq_cst both sides) at least one of
    // the two always sees the other — a correction and a pin never both
    // proceed.
    mvcc_.active_snapshots.fetch_add(1, std::memory_order_seq_cst);
    if (mvcc_.correcting.load(std::memory_order_seq_cst) != 0) {
      mvcc_.active_snapshots.fetch_sub(1, std::memory_order_seq_cst);
      std::this_thread::yield();
      continue;
    }
    const uint64_t word = mvcc_.publish_word.load(std::memory_order_acquire);
    if ((word & 1) != 0) {  // A commit is publishing right now.
      mvcc_.active_snapshots.fetch_sub(1, std::memory_order_seq_cst);
      std::this_thread::yield();
      continue;
    }
    ReadSnapshot snap;
    snap.mvcc_ = &mvcc_;
    snap.seq_ = mvcc_.commit_seq.load(std::memory_order_acquire);
    snap.ts_ = Chronon(mvcc_.last_commit_ts.load(std::memory_order_acquire));
    for (const auto& [name, rel] : relations_) {
      snap.relations_[name] = rel.get();
      snap.pins_[rel->store()] =
          SnapshotPin{snap.seq_, rel->store()->committed_rows(), snap.ts_};
    }
    snap.ranges_ = ranges_;
    if (mvcc_.publish_word.load(std::memory_order_seq_cst) != word) {
      snap.Release();  // Torn capture: a commit published mid-read.
      std::this_thread::yield();
      continue;
    }
    return snap;
  }
  return Status::FailedPrecondition(
      "could not pin a read snapshot: a correction fence is held (is the "
      "pinning thread the one with the open correcting transaction?)");
}

Result<Rowset> Database::QueryAtSnapshot(const ReadSnapshot& snapshot,
                                         std::string_view source) const {
  if (!snapshot.valid()) {
    return Status::InvalidArgument("snapshot is not pinned");
  }
  TDB_ASSIGN_OR_RETURN(std::vector<tquel::Statement> stmts,
                       tquel::Parse(source));
  if (stmts.size() != 1 ||
      !std::holds_alternative<tquel::RetrieveStmt>(stmts[0])) {
    return Status::InvalidArgument(
        "QueryAtSnapshot evaluates exactly one retrieve statement");
  }
  const auto& stmt = std::get<tquel::RetrieveStmt>(stmts[0]);
  if (stmt.into.has_value()) {
    return Status::InvalidArgument(
        "retrieve into writes session state and cannot run on a snapshot");
  }
  // Everything below is thread-private: analysis and evaluation see only
  // the snapshot's frozen catalog and range table, never this database's
  // live maps (which the writer thread may be mutating).
  const std::map<std::string, std::string> ranges = snapshot.ranges();
  auto get_relation =
      [&snapshot](std::string_view name) -> Result<StoredRelation*> {
    const StoredRelation* rel = snapshot.relation(name);
    if (rel == nullptr) {
      return Status::NotFound("no such relation: " + std::string(name));
    }
    // The evaluator reads it exclusively through snapshot-mode scans; the
    // non-const pointer is an artifact of the shared context shape.
    return const_cast<StoredRelation*>(rel);
  };
  tquel::AnalyzerContext actx;
  actx.get_relation = get_relation;
  actx.ranges = &ranges;
  TDB_ASSIGN_OR_RETURN(tquel::BoundRetrieve bound,
                       tquel::AnalyzeRetrieve(stmt, actx));
  tquel::EvalContext ctx;
  ctx.get_relation = get_relation;
  ctx.snapshot = &snapshot;
  return tquel::EvaluateRetrieve(bound, ctx);
}

}  // namespace temporadb
