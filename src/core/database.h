#ifndef TEMPORADB_CORE_DATABASE_H_
#define TEMPORADB_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "exec/thread_pool.h"
#include "rel/relation.h"
#include "storage/fs.h"
#include "storage/wal.h"
#include "temporal/mvcc.h"
#include "temporal/read_snapshot.h"
#include "temporal/stored_relation.h"
#include "tquel/evaluator.h"
#include "txn/clock.h"
#include "txn/txn_manager.h"

namespace temporadb {

/// Database configuration.
struct DatabaseOptions {
  /// Directory for persistence (created if missing).  Empty: purely
  /// in-memory, no WAL, no checkpoints.
  std::string path;

  /// Transaction-time source.  Null: the system calendar.  Tests and the
  /// paper-scenario driver pass a `ManualClock` to replay historical dates.
  /// The clock must outlive the database.
  const Clock* clock = nullptr;

  /// Index toggles, exposed for the ablation benches.
  VersionStoreOptions store_options;

  /// fsync the WAL on every commit (durability); off for benchmarks that
  /// measure the engine rather than the disk.
  bool sync_commits = true;

  /// Filesystem for all persistence I/O.  Null: the real POSIX filesystem.
  /// Crash tests pass a `FaultInjectionFileSystem`; it must outlive the
  /// database.
  FileSystem* fs = nullptr;

  /// Worker threads for parallel scans, used when
  /// `store_options.parallel_scan` is set (the database then owns a
  /// `ThreadPool` and wires it into every relation's version store).
  /// 0: one thread per hardware core.
  size_t max_threads = 0;
};

/// The temporadb embedded database: catalog + relations + transactions +
/// TQuel, with optional WAL/checkpoint persistence.
///
/// Usage:
/// ```cpp
/// auto db = Database::Open({});
/// db->Execute("create temporal relation faculty (name = string, rank = string)");
/// db->Execute("append to faculty (name = \"Merrie\", rank = \"associate\") "
///             "valid from \"09/01/77\" to \"inf\"");
/// db->Execute("range of f is faculty");
/// auto rows = db->Query("retrieve (f.rank) where f.name = \"Merrie\" "
///                       "as of \"12/10/82\"");
/// ```
///
/// Statements run in auto-commit mode (one transaction per DML statement)
/// unless wrapped with `Begin`/`Commit`.
///
/// Threading contract: externally synchronized, single writer.  `Database`
/// holds no mutex by design — the embedded model gives every handle one
/// owner, and a mutex here would serialize nothing real while hiding
/// misuse from TSan.  Internal parallelism is confined to two annotated
/// components: the `ThreadPool` fanning out read-only scan morsels, and
/// the WAL `CommitQueue` batching concurrent commit barriers (see
/// DESIGN.md §11.1 for the full lock hierarchy).
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL (programmatic) -------------------------------------------------

  Result<RelationInfo> CreateRelation(
      const std::string& name, Schema schema, TemporalClass temporal_class,
      TemporalDataModel data_model = TemporalDataModel::kInterval);

  Status DropRelation(const std::string& name);

  Result<StoredRelation*> GetRelation(std::string_view name);
  std::vector<RelationInfo> ListRelations() const;

  // --- TQuel --------------------------------------------------------------

  /// Parses and executes one or more statements; returns the last result.
  /// Each DML statement runs in its own transaction unless one is active.
  Result<tquel::ExecResult> Execute(std::string_view source);

  /// Convenience: executes a single retrieve/show and returns the rowset.
  Result<Rowset> Query(std::string_view source);

  /// Named results of `retrieve into`.
  Result<Rowset> GetDerived(const std::string& name) const;

  // --- Transactions -------------------------------------------------------

  /// Starts an explicit transaction; statements executed until `Commit`
  /// join it.
  Result<Transaction*> Begin();
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Runs `fn` inside a transaction, committing on OK and aborting on
  /// error.
  Status WithTransaction(const std::function<Status(Transaction*)>& fn);

  /// The chronon the next transaction would be stamped with.
  Chronon Now() const { return txn_manager_->Now(); }

  TxnManager* txn_manager() { return txn_manager_.get(); }

  // --- Read snapshots -----------------------------------------------------

  /// Pins a snapshot-isolated read transaction: the returned handle sees
  /// exactly the commits published so far, is safe to use from any thread
  /// while the writer keeps committing, and never blocks the writer.
  /// Results through the pin are bit-identical to quiescing the writer and
  /// querying `as of` the pin's timestamp.  While any snapshot is live,
  /// in-place history rewrites (corrections, compaction) and DDL fail with
  /// FailedPrecondition.  Callable from any thread *except* between a
  /// correction and its commit on the writer thread (it would wait for the
  /// fence and times out with FailedPrecondition).
  Result<ReadSnapshot> BeginReadSnapshot();

  /// Evaluates a single `retrieve` statement against a pinned snapshot.
  /// Thread-safe with respect to the writer and to other snapshot queries;
  /// `retrieve into` is rejected (it writes session state).
  Result<Rowset> QueryAtSnapshot(const ReadSnapshot& snapshot,
                                 std::string_view source) const;

  // --- Persistence --------------------------------------------------------

  /// Writes a consistent checkpoint (catalog + every relation's versions)
  /// and truncates the WAL.  No-op (OK) for in-memory databases.
  ///
  /// With `compact` set, tombstone slots left by historical corrections are
  /// physically reclaimed first (row ids renumber; this is the only point
  /// where that is safe, because the WAL that references them is truncated
  /// by the same checkpoint).  If a compacting checkpoint returns an I/O
  /// error, stop writing and reopen the database: the on-disk state is
  /// still the consistent pre-checkpoint one, but the in-memory row ids no
  /// longer match the surviving WAL.
  Status Checkpoint(bool compact = false);

  /// WAL size in bytes (0 when in-memory); for the recovery bench.
  uint64_t WalBytes() const;

  // --- Introspection ------------------------------------------------------

  const Catalog& catalog() const { return catalog_; }
  std::map<std::string, std::string>& ranges() { return ranges_; }

 private:
  explicit Database(DatabaseOptions options);

  Status InitPersistence();
  Status Recover();
  Status LoadCheckpoint(const std::string& dir);
  Status ReplayWal(uint64_t from_lsn);
  Status LogDdl(uint32_t type, const std::string& payload);
  /// Publishes the effects of one committed transaction to snapshot
  /// readers: under the seqlock, stores every store's committed-row
  /// watermark, bumps the commit sequence, and records `ts` (when finite)
  /// as the last commit timestamp.  Writer-thread only.
  void PublishMvcc(Chronon ts);
  void WireObserver(StoredRelation* rel);
  tquel::EvalContext MakeEvalContext(Transaction* txn);
  Result<StoredRelation*> GetRelationInternal(std::string_view name);
  Status CreateFromStmt(const tquel::CreateStmt& stmt);

  DatabaseOptions options_;
  SystemClock default_clock_;
  const Clock* clock_;
  // Writer/snapshot-reader coordination (commit publication, correction
  // fence); shared with every relation's version store via store options.
  MvccState mvcc_;
  FileSystem* fs_;
  std::unique_ptr<TxnManager> txn_manager_;
  Catalog catalog_;
  std::unordered_map<std::string, std::unique_ptr<StoredRelation>> relations_;
  std::unordered_map<uint64_t, StoredRelation*> relations_by_id_;
  std::map<std::string, std::string> ranges_;
  std::map<std::string, Rowset> derived_;

  // Parallel-scan worker pool, created when store_options.parallel_scan is
  // set; every relation's version store shares it.
  std::unique_ptr<exec::ThreadPool> pool_;

  // Persistence.
  std::unique_ptr<WriteAheadLog> wal_;
  // All commit and DDL records reach the log through the group-commit
  // queue; it also carries the poisoned state (a WAL write or sync failed
  // after records were appended — the fsync may or may not have persisted
  // anything, so no further commit or checkpoint can be trusted until the
  // database is reopened and the log rescanned).
  std::unique_ptr<CommitQueue> commit_queue_;
  // Redo buffer of the active transaction: (relation id, op).
  std::vector<std::pair<uint64_t, VersionOp>> redo_buffer_;
  Transaction* active_txn_ = nullptr;
  bool replaying_ = false;
  uint64_t checkpoint_seq_ = 0;
};

}  // namespace temporadb

#endif  // TEMPORADB_CORE_DATABASE_H_
