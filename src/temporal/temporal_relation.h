#ifndef TEMPORADB_TEMPORAL_TEMPORAL_RELATION_H_
#define TEMPORADB_TEMPORAL_TEMPORAL_RELATION_H_

#include "temporal/stored_relation.h"

namespace temporadb {

/// A temporal (bitemporal) relation (§4.4): "a sequence of historical
/// states, each of which is a complete historical relation."
///
/// "Each transaction causes a new historical state to be created; hence,
/// temporal relations are append-only."
///
/// Implementation: the Figure 8 representation — every version carries both
/// a valid period and a transaction period.  A logical change to the
/// current historical state never mutates committed data; it
///  1. closes the transaction period of each superseded version at the
///     transaction timestamp `T`, and
///  2. appends replacement versions (trimmed remnants and/or updated facts)
///     with transaction period `[T, ∞)`.
/// Rolling back to any past `T'` therefore reconstructs the historical
/// state exactly as it stood then — including the errors later corrected,
/// which is the capability neither rollback nor historical relations have.
class TemporalRelation : public StoredRelation {
 public:
  explicit TemporalRelation(RelationInfo info,
                            VersionStoreOptions options = {})
      : StoredRelation(std::move(info), options) {}

  Status Append(Transaction* txn, std::vector<Value> values,
                std::optional<Period> valid) override;

  /// Both windows are honored.  With `asof`, the snapshot index picks the
  /// transaction-time candidates and `valid_during` rides along as a
  /// residual filter; without it, the scan covers the current historical
  /// state — via the interval index when `valid_during` is present (plus a
  /// current-state residual), via the current set otherwise.
  VersionScan Scan(const ScanSpec& spec) const override;
  VersionBatchScan BatchScan(const ScanSpec& spec) const override;

  Result<size_t> DoDeleteWhere(Transaction* txn, const TuplePredicate& pred,
                               std::optional<Period> valid,
                               const PeriodPredicate& when) override;

  Result<size_t> DoReplaceWhere(Transaction* txn, const TuplePredicate& pred,
                                const UpdateSpec& updates,
                                std::optional<Period> valid,
                                const PeriodPredicate& when) override;
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_TEMPORAL_RELATION_H_
