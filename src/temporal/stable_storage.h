#ifndef TEMPORADB_TEMPORAL_STABLE_STORAGE_H_
#define TEMPORADB_TEMPORAL_STABLE_STORAGE_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace temporadb {

/// Slot storage with *pointer stability* for snapshot readers.
///
/// `std::vector` reallocates on growth, which would pull the slab out from
/// under a concurrent snapshot scan.  SlabVector instead appends into
/// fixed-size slabs that never move once allocated; growth only appends a
/// slab pointer to a directory, and when the directory itself must grow, a
/// fresh directory is built and published with a release store while the
/// old one is retained until the store is destroyed (or compaction runs
/// with snapshots excluded).  A reader pinned to a row watermark therefore
/// dereferences via `AtPinned()` — an acquire load of the directory — and
/// never observes a dangling slab or a torn directory, no matter how much
/// the writer has appended since the pin.
///
/// Threading contract: exactly one writer (all non-const methods); any
/// number of concurrent readers restricted to `AtPinned(i)` with
/// `i < watermark`, where the watermark was published *after* row `i` was
/// fully written (the version store's committed-row watermark provides
/// that release/acquire edge).  `size()` is writer-only state.
template <typename T>
class SlabVector {
 public:
  static constexpr size_t kSlabBits = 10;  // 1024 slots per slab.
  static constexpr size_t kSlabSize = size_t{1} << kSlabBits;
  static constexpr size_t kSlabMask = kSlabSize - 1;

  SlabVector() = default;
  SlabVector(const SlabVector&) = delete;
  SlabVector& operator=(const SlabVector&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Writer-side element access.
  T& operator[](size_t i) {
    return dir_.load(std::memory_order_relaxed)[i >> kSlabBits][i & kSlabMask];
  }
  const T& operator[](size_t i) const {
    return dir_.load(std::memory_order_relaxed)[i >> kSlabBits][i & kSlabMask];
  }

  /// Snapshot-reader element access: acquire-loads the directory and does
  /// no bounds check against `size_` (the caller's pinned watermark is the
  /// bound, and it was published after the element was written).
  const T& AtPinned(size_t i) const {
    T* const* dir = dir_.load(std::memory_order_acquire);
    return dir[i >> kSlabBits][i & kSlabMask];
  }

  void push_back(T v) {
    const size_t slab = size_ >> kSlabBits;
    if (slab == slabs_.size()) AddSlab();
    (*this)[size_] = std::move(v);
    ++size_;
  }

  void pop_back() {
    --size_;
    (*this)[size_] = T{};  // Release payload (e.g. Value heap storage) now.
  }

  /// Shrinks to `n` elements, default-constructing the abandoned tail so
  /// its payload is released.  Writer-only; used by tombstone compaction,
  /// which runs with snapshot readers excluded.
  void Truncate(size_t n) {
    for (size_t i = n; i < size_; ++i) (*this)[i] = T{};
    size_ = n;
  }

 private:
  void AddSlab() {
    slabs_.push_back(std::make_unique<T[]>(kSlabSize));
    const size_t need = slabs_.size();
    if (need > dir_capacity_) {
      // Grow the directory geometrically; retain the old directory array —
      // a reader pinned before this growth may still be traversing it, and
      // its slab pointers remain valid forever.
      const size_t cap = dir_capacity_ == 0 ? 16 : dir_capacity_ * 2;
      auto fresh = std::make_unique<T*[]>(cap);
      T** old = dir_.load(std::memory_order_relaxed);
      for (size_t i = 0; i + 1 < need; ++i) fresh[i] = old[i];
      dir_capacity_ = cap;
      directories_.push_back(std::move(fresh));
      dir_.store(directories_.back().get(), std::memory_order_release);
    }
    // Publish the new slab pointer before any row in it is reachable via a
    // watermark; the watermark's own release store orders this for readers.
    dir_.load(std::memory_order_relaxed)[need - 1] = slabs_.back().get();
  }

  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<std::unique_ptr<T*[]>> directories_;  // Current + retired.
  std::atomic<T**> dir_{nullptr};
  size_t dir_capacity_ = 0;
  size_t size_ = 0;
};

/// A contiguous column (chronon reps, live bytes, close stamps) whose data
/// pointer is *published*: growth copies into a fresh geometrically-larger
/// buffer, release-stores the new pointer, and retains the old buffer so a
/// snapshot reader that acquire-loaded `data()` before the growth keeps a
/// valid view of every element under its watermark.  Retained buffers are
/// bounded by geometric growth (total retired bytes < live bytes) and are
/// freed when compaction runs with readers excluded.
///
/// Threading contract mirrors SlabVector: one writer; readers use `data()`
/// and touch only indexes below a published watermark.  Elements *at or
/// under a watermark* are immutable plain data with one exception — the
/// transaction-end column, whose entries the writer closes in place via
/// the element-level atomics in mvcc.h.
template <typename T>
class StableColumn {
 public:
  StableColumn() = default;
  StableColumn(const StableColumn&) = delete;
  StableColumn& operator=(const StableColumn&) = delete;

  size_t size() const { return size_; }

  /// Reader entry point: acquire-load of the published buffer.
  const T* data() const { return data_.load(std::memory_order_acquire); }
  /// Writer-side raw buffer.
  T* mutable_data() { return data_.load(std::memory_order_relaxed); }

  T& operator[](size_t i) { return mutable_data()[i]; }
  const T& operator[](size_t i) const {
    return data_.load(std::memory_order_relaxed)[i];
  }

  void push_back(T v) {
    if (size_ == capacity_) Grow(size_ + 1);
    mutable_data()[size_] = v;
    ++size_;
  }

  void pop_back() { --size_; }

  void Truncate(size_t n) { size_ = n; }

  void resize(size_t n, T fill = T{}) {
    if (n > capacity_) Grow(n);
    for (size_t i = size_; i < n; ++i) mutable_data()[i] = fill;
    size_ = n;
  }

  /// Frees retired buffers.  Only legal while no snapshot reader can hold
  /// a stale `data()` pointer (i.e. under the correction/compaction
  /// exclusion).
  void ReleaseRetired() { retired_.clear(); }

 private:
  void Grow(size_t need) {
    size_t cap = capacity_ == 0 ? 1024 : capacity_;
    while (cap < need) cap *= 2;
    auto fresh = std::make_unique<T[]>(cap);
    if (size_ != 0) {
      std::memcpy(fresh.get(), mutable_data(), size_ * sizeof(T));
    }
    if (current_ != nullptr) retired_.push_back(std::move(current_));
    current_ = std::move(fresh);
    capacity_ = cap;
    data_.store(current_.get(), std::memory_order_release);
  }

  std::unique_ptr<T[]> current_;
  std::vector<std::unique_ptr<T[]>> retired_;
  std::atomic<T*> data_{nullptr};
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_STABLE_STORAGE_H_
