#ifndef TEMPORADB_TEMPORAL_READ_SNAPSHOT_H_
#define TEMPORADB_TEMPORAL_READ_SNAPSHOT_H_

#include <atomic>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "temporal/mvcc.h"

namespace temporadb {

class Database;
class StoredRelation;
class VersionStore;

/// A snapshot-isolated read transaction: a consistent, immutable view of
/// every relation as of one published commit, usable from any thread while
/// the single writer keeps committing.
///
/// Obtained from `Database::BeginReadSnapshot()`.  The pin captures, under
/// the publication seqlock, the commit sequence number, its timestamp, and
/// the committed-row watermark of every store — all from the *same* commit.
/// Scans issued against the snapshot (via `ScanSpec::snapshot` or
/// `Database::QueryAtSnapshot`) see exactly the rows and transaction-time
/// closes published at or before that commit: later appends fall above the
/// row watermark, later closes are stamped with a later commit sequence and
/// read back as ∞.  The result is bit-identical to quiescing the writer and
/// re-running the same query at the pinned timestamp.
///
/// While any snapshot is live, in-place history rewrites (historical/static
/// corrections, tombstone compaction, DDL) fail with FailedPrecondition —
/// append-only commits proceed untouched.  Destroying the snapshot releases
/// the pin.  Pinning concurrently with DDL on the writer thread is not
/// supported (take snapshots between schema changes).
class ReadSnapshot {
 public:
  ReadSnapshot() = default;
  ~ReadSnapshot() { Release(); }

  ReadSnapshot(ReadSnapshot&& other) noexcept { *this = std::move(other); }
  ReadSnapshot& operator=(ReadSnapshot&& other) noexcept {
    if (this != &other) {
      Release();
      mvcc_ = other.mvcc_;
      other.mvcc_ = nullptr;
      seq_ = other.seq_;
      ts_ = other.ts_;
      relations_ = std::move(other.relations_);
      pins_ = std::move(other.pins_);
      ranges_ = std::move(other.ranges_);
    }
    return *this;
  }

  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  /// True once pinned by BeginReadSnapshot (a default-constructed snapshot
  /// is empty and sees nothing).
  bool valid() const { return mvcc_ != nullptr; }

  /// Sequence number of the last commit visible to this snapshot.
  uint64_t commit_seq() const { return seq_; }
  /// Timestamp of the last visible commit; `as of` this instant against a
  /// quiesced database reproduces the snapshot's view.
  Chronon timestamp() const { return ts_; }

  /// The frozen relation catalog: nullptr when the name was not present at
  /// pin time.
  const StoredRelation* relation(std::string_view name) const {
    auto it = relations_.find(std::string(name));
    return it == relations_.end() ? nullptr : it->second;
  }

  /// The per-store pin to place into `ScanSpec::snapshot`.  A store created
  /// after the pin yields an all-empty pin (seq 0, watermark 0).
  SnapshotPin PinFor(const VersionStore* store) const {
    auto it = pins_.find(store);
    return it == pins_.end() ? SnapshotPin{} : it->second;
  }

  /// Range-variable bindings frozen at pin time (TQuel `range of ...`).
  const std::map<std::string, std::string>& ranges() const { return ranges_; }

  /// Drops the pin early (the destructor also does this).  After release
  /// the snapshot is empty and corrections/compaction may proceed again.
  void Release() {
    if (mvcc_ != nullptr) {
      mvcc_->active_snapshots.fetch_sub(1, std::memory_order_seq_cst);
      mvcc_ = nullptr;
    }
    relations_.clear();
    pins_.clear();
    ranges_.clear();
  }

 private:
  friend class Database;  // Sole producer (BeginReadSnapshot).

  MvccState* mvcc_ = nullptr;  // Non-null <=> registered in active_snapshots.
  uint64_t seq_ = 0;
  Chronon ts_ = Chronon::Beginning();
  std::map<std::string, const StoredRelation*> relations_;
  std::map<const VersionStore*, SnapshotPin> pins_;
  std::map<std::string, std::string> ranges_;
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_READ_SNAPSHOT_H_
