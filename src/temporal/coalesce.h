#ifndef TEMPORADB_TEMPORAL_COALESCE_H_
#define TEMPORADB_TEMPORAL_COALESCE_H_

#include <vector>

#include "temporal/bitemporal_tuple.h"

namespace temporadb {

/// Coalescing: merging value-equivalent tuples whose valid periods overlap
/// or meet into maximal periods.
///
/// Temporal DML naturally fragments validity (a delete in the middle of a
/// period splits it; a replace followed by a reverting replace leaves two
/// adjacent periods with equal values).  Coalescing restores the canonical
/// form in which no two tuples with identical explicit values (and, for
/// bitemporal inputs, identical transaction periods) have adjacent or
/// overlapping valid periods.
///
/// Properties (tested): idempotent; snapshot-preserving (the valid timeslice
/// at every chronon is unchanged); never increases the tuple count.
std::vector<BitemporalTuple> Coalesce(std::vector<BitemporalTuple> tuples);

/// True if `tuples` is already coalesced (no mergeable pair exists).
bool IsCoalesced(const std::vector<BitemporalTuple>& tuples);

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_COALESCE_H_
