#ifndef TEMPORADB_TEMPORAL_PARTITION_H_
#define TEMPORADB_TEMPORAL_PARTITION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/chronon.h"
#include "common/value.h"

namespace temporadb {

/// A half-open row range `[begin, end)` of a scan domain that survived
/// partition pruning.  Ranges are produced in ascending order with adjacent
/// survivors merged, so a store where nothing prunes yields the single range
/// `[0, limit)` — and every downstream consumer (streaming pulls, batch
/// chunking, morsel generation) sees geometry bit-identical to the
/// unpartitioned store.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// A fixed-size bloom + min/max sketch over one key attribute of a sealed
/// partition.  512 bits, four probes per value (double hashing over
/// `Value::Hash()`), plus an integer min/max when every sketched value was
/// an int.  No false negatives by construction: `MayContain` returning
/// false proves the partition holds no row whose attribute equals the key.
struct KeySketch {
  static constexpr size_t kWords = 8;  // 512 bits.
  static constexpr size_t kProbes = 4;

  uint64_t bits[kWords] = {0, 0, 0, 0, 0, 0, 0, 0};
  int64_t min_int = 0;
  int64_t max_int = 0;
  /// 1 while only int values were added (min_int/max_int meaningful).
  uint8_t ints_only = 1;
  /// 1 once any value was added.
  uint8_t populated = 0;

  void Add(const Value& v);
  bool MayContain(const Value& v) const;
};

/// The temporal synopsis of one sealed (cold) partition: enough metadata to
/// decide, without touching a single tuple, whether any live row in
/// `[begin_row, end_row)` can intersect a scan's pushed-down time window.
///
/// All bounds summarize *live* rows only (tombstones match nothing).  The
/// valid-time and tt-start bounds are immutable after seal — sealed rows
/// never change those dimensions outside the correction fence.  Three
/// fields stay mutable because `CloseTxn` (and its abort-time undo) touches
/// sealed rows in place while snapshot readers are pinned; they are
/// accessed exclusively through the `mvcc::` element atomics:
///
///  - `current_rows`: number of live rows with `tt_end = ∞`.  A close
///    decrements it with a release store *after* updating the two fields
///    below, so a reader that acquire-loads 0 also observes them.
///  - `max_finite_tt_end`: max over the finite `tt_end` reps in the
///    partition — with `current_rows == 0`, the exclusive upper bound of
///    every transaction period here.
///  - `last_close_seq`: max commit-sequence stamp over the partition's
///    closes.  A snapshot pinned at `seq < last_close_seq` may be entitled
///    to see some close as not-yet-happened (tt_end back to ∞), so its
///    transaction-time upper bound falls back to ∞.
///
/// Corrections (`PhysicalDelete`/`PhysicalUpdate`/undo, compaction) rewrite
/// sealed rows arbitrarily; they run under the MVCC correction fence (no
/// reader pinned) and repatch the synopsis by exact recomputation —
/// `VersionStore::RepatchSealedSynopsis` is the sanctioned entry point
/// (enforced by tools/tdb_lint.py rule 6).
struct PartitionSynopsis {
  static constexpr size_t kSketchAttrs = 2;

  uint64_t begin_row = 0;
  uint64_t end_row = 0;

  // Valid-time bounds over live rows with non-empty valid periods.  An
  // all-dead or all-empty partition keeps the never-matching defaults
  // (min > any query end, max < any query begin).
  int64_t min_valid_from = Chronon::kForeverRep;
  int64_t max_valid_to = Chronon::kBeginningRep;

  // Transaction-time lower bound over live rows (immutable: tt_start is
  // stamped at append and never rewritten outside the fence).
  int64_t min_tt_start = Chronon::kForeverRep;

  // Mutable trio (see the class comment).
  int64_t max_finite_tt_end = Chronon::kBeginningRep;
  uint64_t current_rows = 0;
  uint64_t last_close_seq = 0;

  uint64_t live_rows = 0;

  KeySketch sketches[kSketchAttrs];

  uint64_t size() const { return end_row - begin_row; }

  /// Checkpoint serialization: fixed-width little-endian fields, no
  /// delimiters (the count prefix in the partitions file bounds the list).
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(std::string_view* in, PartitionSynopsis* out);
};

/// Pruning observability counters, shared by every scan of the stores that
/// point at one instance (`VersionStoreOptions::scan_stats`; non-owning,
/// null = off).  Atomic so concurrent snapshot readers and morsel workers
/// can all report; `Reset()` between queries gives per-query numbers.
///
/// Accounting identity (per predicated sequential/snapshot scan):
///   considered == pruned_tt + pruned_vt + pruned_snapshot + scanned.
/// Unpredicated scans (ScanAll) skip the synopsis walk entirely and leave
/// the counters untouched.  `rows_scanned` counts rows in surviving sealed
/// partitions plus the hot tail; `batch_morsels_formed` counts the
/// batch-aligned chunks a batch scan actually formed — a pruned partition
/// contributes zero (pruning happens before morsel geometry exists).
struct ScanStats {
  std::atomic<uint64_t> partitions_considered{0};
  std::atomic<uint64_t> partitions_pruned_tt{0};
  std::atomic<uint64_t> partitions_pruned_vt{0};
  std::atomic<uint64_t> partitions_pruned_snapshot{0};
  std::atomic<uint64_t> partitions_scanned{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> batch_morsels_formed{0};

  void Reset() {
    partitions_considered.store(0, std::memory_order_relaxed);
    partitions_pruned_tt.store(0, std::memory_order_relaxed);
    partitions_pruned_vt.store(0, std::memory_order_relaxed);
    partitions_pruned_snapshot.store(0, std::memory_order_relaxed);
    partitions_scanned.store(0, std::memory_order_relaxed);
    rows_scanned.store(0, std::memory_order_relaxed);
    batch_morsels_formed.store(0, std::memory_order_relaxed);
  }

  uint64_t considered() const {
    return partitions_considered.load(std::memory_order_relaxed);
  }
  uint64_t pruned_tt() const {
    return partitions_pruned_tt.load(std::memory_order_relaxed);
  }
  uint64_t pruned_vt() const {
    return partitions_pruned_vt.load(std::memory_order_relaxed);
  }
  uint64_t pruned_snapshot() const {
    return partitions_pruned_snapshot.load(std::memory_order_relaxed);
  }
  uint64_t scanned() const {
    return partitions_scanned.load(std::memory_order_relaxed);
  }
  uint64_t rows() const {
    return rows_scanned.load(std::memory_order_relaxed);
  }
  uint64_t morsels() const {
    return batch_morsels_formed.load(std::memory_order_relaxed);
  }
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_PARTITION_H_
