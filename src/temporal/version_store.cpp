#include "temporal/version_store.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "exec/parallel_scan.h"
#include "exec/thread_pool.h"
#include "rel/kernels.h"

namespace temporadb {

VersionScan::VersionScan(const VersionStore* store, VersionFilter filter)
    : store_(store),
      sequential_(true),
      filter_(std::move(filter)),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()) {}

VersionScan::VersionScan(const VersionStore* store, std::vector<RowId> rows,
                         VersionFilter filter)
    : store_(store),
      sequential_(false),
      rows_(std::move(rows)),
      filter_(std::move(filter)),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()) {
  // Index probes return candidates in index order and may repeat a row
  // (e.g. a txn-window query hitting both the closed and current sets);
  // sort and dedupe so the yield order matches a sequential sweep.
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool VersionScan::ShouldRunParallel() const {
  const VersionStoreOptions& o = store_->options();
  if (!o.parallel_scan || o.exec_pool == nullptr) return false;
  const size_t domain = sequential_ ? limit_ : rows_.size();
  return domain >= o.parallel_min_rows;
}

void VersionScan::MaterializeParallel() {
  // The probe runs on workers, but everything it touches is fixed at this
  // point: `rows_` was resolved from the indexes at open (coordinator
  // side), and slots below `limit_` are immutable while the scan lives
  // (see the epoch contract).  Each morsel probes a contiguous range of
  // the candidate domain, so the concatenation in morsel order is exactly
  // the sequence the pull loop would yield.
  const size_t domain = sequential_ ? limit_ : rows_.size();
  const bool seq = sequential_;
  buffer_ =
      exec::ParallelScan<std::pair<RowId, const BitemporalTuple*>>(
          store_->options().exec_pool, domain,
          [this, seq](size_t begin, size_t end,
                      std::vector<std::pair<RowId, const BitemporalTuple*>>*
                          out) {
            for (size_t i = begin; i < end; ++i) {
              const RowId row = seq ? i : rows_[i];
              Result<const BitemporalTuple*> t = store_->Get(row);
              if (!t.ok()) continue;  // Tombstone (or a stale index entry).
              if (filter_ && !filter_(**t)) continue;
              out->emplace_back(row, *t);
            }
          });
  buffered_ = true;
  pos_ = 0;
}

const BitemporalTuple* VersionScan::Next(RowId* row_out) {
  assert(epoch_ == store_->mutation_epoch() &&
         "VersionScan advanced after a store mutation; pointers and the "
         "row watermark are stale (open a fresh scan)");
  if (!decided_) {
    decided_ = true;
    if (ShouldRunParallel()) MaterializeParallel();
  }
  if (buffered_) {
    if (pos_ >= buffer_.size()) return nullptr;
    const auto& [row, tuple] = buffer_[pos_];
    ++pos_;
    if (row_out != nullptr) *row_out = row;
    return tuple;
  }
  const size_t limit = sequential_ ? limit_ : rows_.size();
  while (pos_ < limit) {
    const RowId row = sequential_ ? pos_ : rows_[pos_];
    ++pos_;
    Result<const BitemporalTuple*> t = store_->Get(row);
    if (!t.ok()) continue;  // Tombstone (or a stale index entry).
    if (filter_ && !filter_(**t)) continue;
    if (row_out != nullptr) *row_out = row;
    return *t;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// VersionBatchScan
// ---------------------------------------------------------------------------

namespace {

// An empty overlap window can never match (Period::Overlaps is false against
// an empty operand); the overlap kernels assume a non-empty query window, so
// the scan collapses its domain to nothing instead.
bool NeverMatches(const BatchPredicates& p) {
  return (p.valid_overlaps.has_value() && p.valid_overlaps->IsEmpty()) ||
         (p.txn_overlaps.has_value() && p.txn_overlaps->IsEmpty());
}

}  // namespace

VersionBatchScan::VersionBatchScan(const VersionStore* store,
                                   BatchPredicates preds)
    : store_(store),
      sequential_(true),
      preds_(preds),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()),
      batch_rows_(store->options().batch_rows == 0 ? 1
                                                   : store->options().batch_rows) {
  assert(limit_ <= std::numeric_limits<uint32_t>::max() &&
         "selection vectors index rows as uint32");
  if (NeverMatches(preds_)) limit_ = 0;
}

VersionBatchScan::VersionBatchScan(const VersionStore* store,
                                   std::vector<RowId> rows,
                                   BatchPredicates preds)
    : store_(store),
      sequential_(false),
      rows_(std::move(rows)),
      preds_(preds),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()),
      batch_rows_(store->options().batch_rows == 0 ? 1
                                                   : store->options().batch_rows) {
  assert(limit_ <= std::numeric_limits<uint32_t>::max() &&
         "selection vectors index rows as uint32");
  // Same candidate discipline as VersionScan: index probes yield lookup
  // order with possible repeats; sort and dedupe so batches ascend.
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
  if (NeverMatches(preds_)) rows_.clear();
}

bool VersionBatchScan::ShouldRunParallel() const {
  const VersionStoreOptions& o = store_->options();
  if (!o.parallel_scan || o.exec_pool == nullptr) return false;
  const size_t domain = sequential_ ? limit_ : rows_.size();
  return domain >= o.parallel_min_rows;
}

void VersionBatchScan::ProbeRange(size_t begin, size_t end,
                                  VersionBatch* out) const {
  const size_t n = end - begin;
  if (n == 0) return;
  const int64_t* vf = store_->chronon_valid_from();
  const int64_t* vt = store_->chronon_valid_to();
  const int64_t* ts = store_->chronon_tt_start();
  const int64_t* te = store_->chronon_tt_end();
  const uint8_t* live = store_->chronon_live();

  // Ping-pong selection vectors: each kernel pass refines `cur` into `nxt`.
  // Small probes (index-nested-loop joins pull a handful of candidates per
  // outer tuple) stay on the stack; only real batches pay an allocation.
  constexpr size_t kStackSel = 64;
  uint32_t stack_a[kStackSel];
  uint32_t stack_b[kStackSel];
  std::vector<uint32_t> sel_a;
  std::vector<uint32_t> sel_b;
  uint32_t* cur = stack_a;
  uint32_t* nxt = stack_b;
  if (n > kStackSel) {
    sel_a.resize(n);
    sel_b.resize(n);
    cur = sel_a.data();
    nxt = sel_b.data();
  }
  size_t cnt;
  if (sequential_) {
    // Dense seed over the contiguous row range, rebased to absolute ids so
    // the refine passes index the full columns.
    cnt = kernels::SelectLive(live + begin, n, cur);
    for (size_t k = 0; k < cnt; ++k) cur[k] += static_cast<uint32_t>(begin);
  } else {
    // Index candidates are scattered row ids; mask stale (tombstoned)
    // entries first, exactly like the pull loop's Get() check.
    for (size_t k = 0; k < n; ++k) {
      cur[k] = static_cast<uint32_t>(rows_[begin + k]);
    }
    cnt = kernels::SelectLiveRefine(live, cur, n, nxt);
    std::swap(cur, nxt);
  }

  if (preds_.txn_contains.has_value()) {
    cnt = kernels::SelectContainsRefine(ts, te, cur, cnt,
                                        preds_.txn_contains->days(), nxt);
    std::swap(cur, nxt);
  }
  if (preds_.txn_overlaps.has_value()) {
    cnt = kernels::SelectOverlapsRefine(ts, te, cur, cnt,
                                        preds_.txn_overlaps->begin().days(),
                                        preds_.txn_overlaps->end().days(), nxt);
    std::swap(cur, nxt);
  }
  if (preds_.txn_current) {
    cnt = kernels::SelectEndEqualsRefine(te, cur, cnt, Chronon::kForeverRep,
                                         nxt);
    std::swap(cur, nxt);
  }
  if (preds_.valid_overlaps.has_value()) {
    cnt = kernels::SelectOverlapsRefine(vf, vt, cur, cnt,
                                        preds_.valid_overlaps->begin().days(),
                                        preds_.valid_overlaps->end().days(),
                                        nxt);
    std::swap(cur, nxt);
  }

  // Gather the survivors: borrowed tuple pointers plus copies of their
  // chronon entries, so downstream kernels keep running over flat arrays.
  for (size_t k = 0; k < cnt; ++k) {
    const RowId row = cur[k];
    Result<const BitemporalTuple*> t = store_->Get(row);
    assert(t.ok());  // Liveness was established by the kernel chain.
    out->rows.push_back(row);
    out->tuples.push_back(*t);
    out->valid_from.push_back(vf[row]);
    out->valid_to.push_back(vt[row]);
    out->tt_start.push_back(ts[row]);
    out->tt_end.push_back(te[row]);
  }
}

void VersionBatchScan::MaterializeParallel() {
  const size_t domain = sequential_ ? limit_ : rows_.size();
  exec::MorselOptions morsels;
  morsels.morsel_rows = batch_rows_;
  batches_ = exec::ParallelScan<VersionBatch>(
      store_->options().exec_pool, domain,
      [this](size_t begin, size_t end, std::vector<VersionBatch>* out) {
        // One batch per batch_rows-aligned chunk.  Morsel boundaries are
        // multiples of batch_rows, so the sequential fallback (one probe
        // over the whole domain) slices identically — batch boundaries, not
        // just row order, are thread-count-invariant.
        for (size_t b = begin; b < end; b += batch_rows_) {
          VersionBatch batch;
          ProbeRange(b, std::min(end, b + batch_rows_), &batch);
          out->push_back(std::move(batch));
        }
      },
      morsels);
  buffered_ = true;
  batch_pos_ = 0;
}

bool VersionBatchScan::Next(VersionBatch* out) {
  assert(epoch_ == store_->mutation_epoch() &&
         "VersionBatchScan advanced after a store mutation; pointers and the "
         "row watermark are stale (open a fresh scan)");
  if (!decided_) {
    decided_ = true;
    if (ShouldRunParallel()) MaterializeParallel();
  }
  if (buffered_) {
    while (batch_pos_ < batches_.size()) {
      VersionBatch& b = batches_[batch_pos_++];
      if (b.empty()) continue;
      *out = std::move(b);
      return true;
    }
    return false;
  }
  const size_t domain = sequential_ ? limit_ : rows_.size();
  while (pos_ < domain) {
    const size_t begin = pos_;
    const size_t end = std::min(domain, begin + batch_rows_);
    pos_ = end;
    out->Clear();
    ProbeRange(begin, end, out);
    if (!out->empty()) return true;
  }
  return false;
}

VersionStore::VersionStore(VersionStoreOptions options) : options_(options) {}

// The secondary-index mutators below return Status for API generality, but
// every call in this file maintains an index entry for a slot this store
// just validated (fresh row id, live version, period shape checked by the
// caller), so failure would mean the store's own invariants are broken —
// the drops are deliberate and each carries its reason.

void VersionStore::IndexInsert(RowId row, const BitemporalTuple& t) {
  if (options_.index_txn_time) {
    if (t.IsCurrentState()) {
      // Fresh row id: cannot already be in the current set.
      (void)txn_index_.AddCurrent(row, t.txn.begin());
    } else {
      // Closed period of a validated tuple: shape errors are impossible.
      (void)txn_index_.AddClosed(row, t.txn);
    }
  }
  if (options_.index_valid_time && !t.valid.IsEmpty()) {
    // Non-empty period guaranteed by the guard above.
    (void)valid_index_.Insert(t.valid, row);
  }
}

void VersionStore::IndexEraseValid(RowId row, const BitemporalTuple& t) {
  if (options_.index_valid_time && !t.valid.IsEmpty()) {
    // The entry was inserted by IndexInsert with this exact period.
    (void)valid_index_.Remove(t.valid, row);
  }
}

void VersionStore::AttrIndexInsert(RowId row, const BitemporalTuple& t) {
  for (auto& [attr, index] : attr_indexes_) {
    if (attr < t.values.size()) index->Insert(t.values[attr], row);
  }
}

void VersionStore::AttrIndexErase(RowId row, const BitemporalTuple& t) {
  for (auto& [attr, index] : attr_indexes_) {
    // Inserted by AttrIndexInsert with this exact key.
    if (attr < t.values.size()) (void)index->Remove(t.values[attr], row);
  }
}

void VersionStore::SyncChrononColumns(RowId row) {
  const Slot& slot = versions_[row];
  col_valid_from_[row] = slot.tuple.valid.begin().days();
  col_valid_to_[row] = slot.tuple.valid.end().days();
  col_tt_start_[row] = slot.tuple.txn.begin().days();
  col_tt_end_[row] = slot.tuple.txn.end().days();
  col_live_[row] = slot.tombstone ? 0 : 1;
}

RowId VersionStore::RawAppend(BitemporalTuple tuple) {
  RowId row = versions_.size();
  IndexInsert(row, tuple);
  AttrIndexInsert(row, tuple);
  versions_.push_back(Slot{std::move(tuple), false});
  col_valid_from_.push_back(0);
  col_valid_to_.push_back(0);
  col_tt_start_.push_back(0);
  col_tt_end_.push_back(0);
  col_live_.push_back(1);
  SyncChrononColumns(row);
  ++live_count_;
  ++mutation_epoch_;
  return row;
}

void VersionStore::RawUnappend(RowId row) {
  assert(row + 1 == versions_.size());
  Slot& slot = versions_[row];
  if (!slot.tombstone) {
    IndexEraseValid(row, slot.tuple);
    AttrIndexErase(row, slot.tuple);
    if (options_.index_txn_time && slot.tuple.IsCurrentState()) {
      // Remove from the current set by "closing at start" (zero-length
      // periods are dropped, not indexed).  The row is current by the
      // IsCurrentState() guard, so the close cannot miss.
      (void)txn_index_.CloseCurrent(row, slot.tuple.txn.begin());
    }
    --live_count_;
  }
  versions_.pop_back();
  col_valid_from_.pop_back();
  col_valid_to_.pop_back();
  col_tt_start_.pop_back();
  col_tt_end_.pop_back();
  col_live_.pop_back();
  ++mutation_epoch_;
}

Status VersionStore::RawCloseTxn(RowId row, Chronon tt_end) {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  BitemporalTuple& t = versions_[row].tuple;
  if (!t.IsCurrentState()) {
    return Status::FailedPrecondition(
        "version's transaction period is already closed");
  }
  if (tt_end < t.txn.begin()) {
    return Status::InvalidArgument(
        "transaction end precedes transaction start");
  }
  if (options_.index_txn_time) {
    TDB_RETURN_IF_ERROR(txn_index_.CloseCurrent(row, tt_end));
  }
  t.txn = Period(t.txn.begin(), tt_end);
  SyncChrononColumns(row);
  ++mutation_epoch_;
  return Status::OK();
}

void VersionStore::RawReopenTxn(RowId row, Chronon old_end) {
  assert(old_end.IsForever());
  Slot& slot = versions_[row];
  Chronon start = slot.tuple.txn.begin();
  if (options_.index_txn_time) {
    // Undo of a close this transaction performed; the closed entry exists.
    (void)txn_index_.ReopenAsCurrent(row, start, slot.tuple.txn.end());
  }
  slot.tuple.txn = Period(start, old_end);
  SyncChrononColumns(row);
  ++mutation_epoch_;
}

Status VersionStore::RawPhysicalDelete(RowId row) {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  Slot& slot = versions_[row];
  IndexEraseValid(row, slot.tuple);
  AttrIndexErase(row, slot.tuple);
  if (options_.index_txn_time && slot.tuple.IsCurrentState()) {
    // Current by the guard; close-at-start drops the index entry.
    (void)txn_index_.CloseCurrent(row, slot.tuple.txn.begin());
  }
  slot.tombstone = true;
  col_live_[row] = 0;
  --live_count_;
  ++mutation_epoch_;
  return Status::OK();
}

void VersionStore::RawUndelete(RowId row, BitemporalTuple tuple) {
  Slot& slot = versions_[row];
  assert(slot.tombstone);
  slot.tuple = std::move(tuple);
  slot.tombstone = false;
  SyncChrononColumns(row);
  IndexInsert(row, slot.tuple);
  AttrIndexInsert(row, slot.tuple);
  ++live_count_;
  ++mutation_epoch_;
}

Status VersionStore::RawPhysicalUpdate(RowId row, BitemporalTuple tuple) {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  Slot& slot = versions_[row];
  IndexEraseValid(row, slot.tuple);
  AttrIndexErase(row, slot.tuple);
  if (options_.index_txn_time && slot.tuple.IsCurrentState()) {
    // Current by the guard; close-at-start drops the index entry.
    (void)txn_index_.CloseCurrent(row, slot.tuple.txn.begin());
  }
  slot.tuple = std::move(tuple);
  SyncChrononColumns(row);
  IndexInsert(row, slot.tuple);
  AttrIndexInsert(row, slot.tuple);
  ++mutation_epoch_;
  return Status::OK();
}

Result<RowId> VersionStore::Append(Transaction* txn, BitemporalTuple tuple) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("append outside an active transaction");
  }
  BitemporalTuple copy = tuple;
  RowId row = RawAppend(std::move(tuple));
  txn->PushUndo([this, row] { RawUnappend(row); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kAppend;
    op.row = row;
    op.tuple = std::move(copy);
    observer_(op);
  }
  return row;
}

Status VersionStore::CloseTxn(Transaction* txn, RowId row, Chronon tt_end) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("close outside an active transaction");
  }
  TDB_RETURN_IF_ERROR(RawCloseTxn(row, tt_end));
  txn->PushUndo([this, row] { RawReopenTxn(row, Chronon::Forever()); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kCloseTxn;
    op.row = row;
    op.tt_end = tt_end;
    observer_(op);
  }
  return Status::OK();
}

Status VersionStore::PhysicalDelete(Transaction* txn, RowId row) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("delete outside an active transaction");
  }
  TDB_ASSIGN_OR_RETURN(const BitemporalTuple* old, Get(row));
  BitemporalTuple saved = *old;
  TDB_RETURN_IF_ERROR(RawPhysicalDelete(row));
  txn->PushUndo([this, row, saved] { RawUndelete(row, saved); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kPhysicalDelete;
    op.row = row;
    observer_(op);
  }
  return Status::OK();
}

Status VersionStore::PhysicalUpdate(Transaction* txn, RowId row,
                                    BitemporalTuple tuple) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("update outside an active transaction");
  }
  TDB_ASSIGN_OR_RETURN(const BitemporalTuple* old, Get(row));
  BitemporalTuple saved = *old;
  BitemporalTuple copy = tuple;
  TDB_RETURN_IF_ERROR(RawPhysicalUpdate(row, std::move(tuple)));
  // Undo restores the overwritten tuple; the row was live when the update
  // succeeded, so the inverse update cannot fail.
  txn->PushUndo([this, row, saved] { (void)RawPhysicalUpdate(row, saved); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kPhysicalUpdate;
    op.row = row;
    op.tuple = std::move(copy);
    observer_(op);
  }
  return Status::OK();
}

Result<const BitemporalTuple*> VersionStore::Get(RowId row) const {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  return &versions_[row].tuple;
}

void VersionStore::ForEach(
    const std::function<void(RowId, const BitemporalTuple&)>& fn) const {
  for (RowId row = 0; row < versions_.size(); ++row) {
    if (!versions_[row].tombstone) fn(row, versions_[row].tuple);
  }
}

std::vector<RowId> VersionStore::TxnAsOf(Chronon t) const {
  std::vector<RowId> out;
  if (options_.index_txn_time) {
    txn_index_.AsOf(t, [&](RowId row) { out.push_back(row); });
  } else {
    ForEach([&](RowId row, const BitemporalTuple& tuple) {
      if (tuple.txn.Contains(t)) out.push_back(row);
    });
  }
  return out;
}

std::vector<RowId> VersionStore::CurrentRows() const {
  std::vector<RowId> out;
  if (options_.index_txn_time) {
    txn_index_.Current([&](RowId row) { out.push_back(row); });
  } else {
    ForEach([&](RowId row, const BitemporalTuple& tuple) {
      if (tuple.IsCurrentState()) out.push_back(row);
    });
  }
  return out;
}

std::vector<RowId> VersionStore::ValidOverlapping(Period q) const {
  std::vector<RowId> out;
  if (options_.index_valid_time) {
    valid_index_.Overlapping(q, [&](Period, RowId row) { out.push_back(row); });
  } else {
    ForEach([&](RowId row, const BitemporalTuple& tuple) {
      if (tuple.valid.Overlaps(q)) out.push_back(row);
    });
  }
  return out;
}

VersionScan VersionStore::ScanAll(VersionFilter extra) const {
  return VersionScan(this, std::move(extra));
}

namespace {

// Composes a time-window predicate with a caller-supplied residual filter.
VersionFilter Compose(VersionFilter window, VersionFilter extra) {
  if (!extra) return window;
  if (!window) return extra;
  return [window = std::move(window), extra = std::move(extra)](
             const BitemporalTuple& t) { return window(t) && extra(t); };
}

}  // namespace

VersionScan VersionStore::ScanCurrent(VersionFilter extra) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Current([&](RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  return VersionScan(
      this, Compose([](const BitemporalTuple& t) { return t.IsCurrentState(); },
                    std::move(extra)));
}

VersionScan VersionStore::ScanAsOf(Chronon t, VersionFilter extra) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.AsOf(t, [&](RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  return VersionScan(
      this,
      Compose([t](const BitemporalTuple& v) { return v.txn.Contains(t); },
              std::move(extra)));
}

VersionScan VersionStore::ScanTxnOverlapping(Period q,
                                             VersionFilter extra) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Overlapping(q, [&](RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  return VersionScan(
      this,
      Compose([q](const BitemporalTuple& v) { return v.txn.Overlaps(q); },
              std::move(extra)));
}

VersionScan VersionStore::ScanValidDuring(Period q, VersionFilter extra) const {
  if (options_.index_valid_time) {
    std::vector<RowId> rows;
    valid_index_.Overlapping(q, [&](Period, RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  return VersionScan(
      this,
      Compose([q](const BitemporalTuple& v) { return v.valid.Overlaps(q); },
              std::move(extra)));
}

// The Batch* entry points mirror the row entry points branch-for-branch:
// with the relevant index on, the same index probe yields the candidate
// rows (probes are exact, no residual window check); without it, the
// window becomes a structured BatchPredicates entry evaluated by the
// columnar kernels — the kernel semantics match Period bit-for-bit, so
// both paths visit the same rows in the same order as the row scan.

VersionBatchScan VersionStore::BatchScanAll(BatchPredicates residual) const {
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanCurrent(BatchPredicates residual) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Current([&](RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.txn_current = true;
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanAsOf(Chronon t,
                                             BatchPredicates residual) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.AsOf(t, [&](RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.txn_contains = t;
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanTxnOverlapping(
    Period q, BatchPredicates residual) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Overlapping(q, [&](RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.txn_overlaps = q;
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanValidDuring(
    Period q, BatchPredicates residual) const {
  if (options_.index_valid_time) {
    std::vector<RowId> rows;
    valid_index_.Overlapping(q, [&](Period, RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.valid_overlaps = q;
  return VersionBatchScan(this, std::move(residual));
}

Status VersionStore::ApplyReplay(const VersionOp& op) {
  switch (op.kind) {
    case VersionOp::Kind::kAppend: {
      RowId row = RawAppend(op.tuple);
      if (row != op.row) {
        return Status::Corruption(
            "replay row id mismatch: log does not match store state");
      }
      return Status::OK();
    }
    case VersionOp::Kind::kCloseTxn:
      return RawCloseTxn(op.row, op.tt_end);
    case VersionOp::Kind::kPhysicalDelete:
      return RawPhysicalDelete(op.row);
    case VersionOp::Kind::kPhysicalUpdate:
      return RawPhysicalUpdate(op.row, op.tuple);
  }
  return Status::Corruption("unknown version op in log");
}

void VersionStore::ForEachSlot(
    const std::function<void(RowId, const BitemporalTuple*)>& fn) const {
  for (RowId row = 0; row < versions_.size(); ++row) {
    fn(row, versions_[row].tombstone ? nullptr : &versions_[row].tuple);
  }
}

RowId VersionStore::LoadSlot(std::optional<BitemporalTuple> tuple) {
  if (tuple.has_value()) {
    return RawAppend(std::move(*tuple));
  }
  RowId row = versions_.size();
  versions_.push_back(Slot{BitemporalTuple{}, true});
  col_valid_from_.push_back(0);
  col_valid_to_.push_back(0);
  col_tt_start_.push_back(0);
  col_tt_end_.push_back(0);
  col_live_.push_back(0);
  ++mutation_epoch_;
  return row;
}

size_t VersionStore::CompactTombstones() {
  size_t reclaimed = versions_.size() - live_count_;
  if (reclaimed == 0) return 0;  // Nothing to do; don't disturb the slots.
  std::vector<Slot> survivors;
  survivors.reserve(live_count_);
  for (Slot& slot : versions_) {
    if (!slot.tombstone) survivors.push_back(std::move(slot));
  }
  versions_ = std::move(survivors);
  col_valid_from_.resize(versions_.size());
  col_valid_to_.resize(versions_.size());
  col_tt_start_.resize(versions_.size());
  col_tt_end_.resize(versions_.size());
  col_live_.resize(versions_.size());
  // Row ids changed: rebuild every index from scratch.
  txn_index_.Clear();
  valid_index_.Clear();
  for (auto& [attr, index] : attr_indexes_) index->Clear();
  for (RowId row = 0; row < versions_.size(); ++row) {
    SyncChrononColumns(row);
    IndexInsert(row, versions_[row].tuple);
    AttrIndexInsert(row, versions_[row].tuple);
  }
  ++mutation_epoch_;
  return reclaimed;
}

Status VersionStore::CreateAttributeIndex(size_t attr_index) {
  if (attr_indexes_.contains(attr_index)) {
    return Status::AlreadyExists("attribute is already indexed");
  }
  auto index = std::make_unique<BTreeIndex>();
  for (RowId row = 0; row < versions_.size(); ++row) {
    const Slot& slot = versions_[row];
    if (slot.tombstone) continue;
    if (attr_index >= slot.tuple.values.size()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    index->Insert(slot.tuple.values[attr_index], row);
  }
  attr_indexes_.emplace(attr_index, std::move(index));
  return Status::OK();
}

Result<std::vector<RowId>> VersionStore::LookupAttribute(
    size_t attr_index, const Value& key) const {
  auto it = attr_indexes_.find(attr_index);
  if (it == attr_indexes_.end()) {
    return Status::FailedPrecondition("attribute is not indexed");
  }
  return it->second->Lookup(key);
}

size_t VersionStore::current_count() const {
  if (options_.index_txn_time) return txn_index_.current_count();
  size_t n = 0;
  ForEach([&](RowId, const BitemporalTuple& t) {
    if (t.IsCurrentState()) ++n;
  });
  return n;
}

size_t VersionStore::ApproximateBytes() const {
  size_t bytes = versions_.size() * (sizeof(Slot) + 4 * sizeof(int64_t));
  for (const Slot& s : versions_) {
    for (const Value& v : s.tuple.values) {
      bytes += sizeof(Value);
      if (v.type() == ValueType::kString) bytes += v.AsString().size();
    }
  }
  return bytes;
}

}  // namespace temporadb
