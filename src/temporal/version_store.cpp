#include "temporal/version_store.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/check.h"
#include "exec/parallel_scan.h"
#include "exec/thread_pool.h"
#include "rel/kernels.h"

namespace temporadb {

namespace {

// Scalar twins of the kernel predicates, for the row-at-a-time snapshot
// scan.  Bit-for-bit the same comparisons as rel/kernels.cpp so the row and
// batch snapshot paths agree on every edge (empty periods, sentinel reps).
inline bool ScalarOverlaps(int64_t b, int64_t e, int64_t qb, int64_t qe) {
  return b < qe && qb < e && b < e;
}
inline bool ScalarContains(int64_t b, int64_t e, int64_t t) {
  return b <= t && t < e;
}

}  // namespace

namespace {

// An empty overlap window can never match (Period::Overlaps is false against
// an empty operand); scans collapse their domain to nothing instead of
// probing (the overlap kernels also assume non-empty query windows).
bool NeverMatches(const BatchPredicates& p) {
  return (p.valid_overlaps.has_value() && p.valid_overlaps->IsEmpty()) ||
         (p.txn_overlaps.has_value() && p.txn_overlaps->IsEmpty());
}

}  // namespace

VersionScan::VersionScan(const VersionStore* store, VersionFilter filter,
                         BatchPredicates prune_hint)
    : store_(store),
      sequential_(true),
      filter_(std::move(filter)),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()) {
  // The hint mirrors the window the filter checks; rows it would prune are
  // rows the filter rejects, so consulting synopses here cannot change the
  // yielded sequence — only how much of the store gets touched finding it.
  if (NeverMatches(prune_hint)) {
    limit_ = 0;
  } else {
    ranges_ = store->PruneRanges(prune_hint, limit_, nullptr);
  }
}

VersionScan::VersionScan(const VersionStore* store, std::vector<RowId> rows,
                         VersionFilter filter)
    : store_(store),
      sequential_(false),
      rows_(std::move(rows)),
      filter_(std::move(filter)),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()) {
  // Index probes return candidates in index order and may repeat a row
  // (e.g. a txn-window query hitting both the closed and current sets);
  // sort and dedupe so the yield order matches a sequential sweep.
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

VersionScan::VersionScan(const VersionStore* store, SnapshotPin pin,
                         BatchPredicates preds)
    : store_(store),
      sequential_(true),
      limit_(pin.rows),
      epoch_(0),
      snapshot_(true),
      pin_(pin),
      preds_(preds) {
  // Empty overlap windows can never match (Period::Overlaps is false
  // against an empty operand); collapse the domain like the batch scan.
  if (NeverMatches(preds_)) {
    limit_ = 0;
  } else {
    ranges_ = store->PruneRanges(preds_, limit_, &pin_);
  }
}

bool VersionScan::ShouldRunParallel() const {
  // Snapshot scans always run sequentially on the calling reader thread:
  // the thread pool is the writer's resource, and N reader threads already
  // provide the parallelism.
  if (snapshot_) return false;
  const VersionStoreOptions& o = store_->options();
  if (!o.parallel_scan || o.exec_pool == nullptr) return false;
  const size_t domain = sequential_ ? limit_ : rows_.size();
  return domain >= o.parallel_min_rows;
}

void VersionScan::MaterializeParallel() {
  // The probe runs on workers, but everything it touches is fixed at this
  // point: `rows_` was resolved from the indexes at open (coordinator
  // side), and slots below `limit_` are immutable while the scan lives
  // (see the epoch contract).  Each morsel probes a contiguous range of
  // the candidate domain, so the concatenation in morsel order is exactly
  // the sequence the pull loop would yield.
  const auto probe = [this](size_t begin, size_t end,
                            std::vector<std::pair<
                                RowId, const BitemporalTuple*>>* out) {
    for (size_t i = begin; i < end; ++i) {
      const RowId row = sequential_ ? i : rows_[i];
      Result<const BitemporalTuple*> t = store_->Get(row);
      if (!t.ok()) continue;  // Tombstone (or a stale index entry).
      if (filter_ && !filter_(**t)) continue;
      out->emplace_back(row, *t);
    }
  };
  if (sequential_) {
    // The domain is the pruned range list; chunks restart at each range, so
    // pruned partitions never become morsels.  With the single no-prune
    // range this is the exact classic morsel grid.
    buffer_ = exec::ParallelScanRanges<std::pair<RowId, const BitemporalTuple*>>(
        store_->options().exec_pool, ranges_, probe);
  } else {
    buffer_ = exec::ParallelScan<std::pair<RowId, const BitemporalTuple*>>(
        store_->options().exec_pool, rows_.size(), probe);
  }
  buffered_ = true;
  pos_ = 0;
}

const BitemporalTuple* VersionScan::NextSnapshot(RowId* row_out) {
  // Reader-thread path: bounded by the pin's watermark, predicates against
  // the pin-effective transaction ends, no epoch, no indexes, no filter_.
  // Plain loads of valid/tt_start/live are race-free — rows under a
  // published watermark are immutable except for tt_end (read atomically
  // via EffectiveTtEnd) while corrections are excluded.
  const int64_t* vf = store_->chronon_valid_from();
  const int64_t* vt = store_->chronon_valid_to();
  const int64_t* ts = store_->chronon_tt_start();
  const uint8_t* live = store_->chronon_live();
  while (range_idx_ < ranges_.size()) {
    const RowRange& r = ranges_[range_idx_];
    if (pos_ < r.begin) pos_ = r.begin;
    if (pos_ >= r.end) {
      ++range_idx_;
      continue;
    }
    const RowId row = pos_;
    ++pos_;
    if (live[row] == 0) continue;  // Tombstoned before the pin.
    const int64_t te = store_->EffectiveTtEnd(row, pin_.seq);
    if (preds_.txn_contains.has_value() &&
        !ScalarContains(ts[row], te, preds_.txn_contains->days())) {
      continue;
    }
    if (preds_.txn_overlaps.has_value() &&
        !ScalarOverlaps(ts[row], te, preds_.txn_overlaps->begin().days(),
                        preds_.txn_overlaps->end().days())) {
      continue;
    }
    if (preds_.txn_current && te != Chronon::kForeverRep) continue;
    if (preds_.valid_overlaps.has_value() &&
        !ScalarOverlaps(vf[row], vt[row],
                        preds_.valid_overlaps->begin().days(),
                        preds_.valid_overlaps->end().days())) {
      continue;
    }
    if (row_out != nullptr) *row_out = row;
    return store_->TuplePinned(row);
  }
  return nullptr;
}

const BitemporalTuple* VersionScan::Next(RowId* row_out) {
  if (snapshot_) return NextSnapshot(row_out);
  TDB_INVARIANT_CHECK(
      epoch_ == store_->mutation_epoch(),
      "VersionScan advanced after a store mutation; index candidates and "
      "the row watermark are stale (open a fresh scan, or use a read "
      "snapshot for scans that must survive commits)");
  if (!decided_) {
    decided_ = true;
    if (ShouldRunParallel()) MaterializeParallel();
  }
  if (buffered_) {
    if (pos_ >= buffer_.size()) return nullptr;
    const auto& [row, tuple] = buffer_[pos_];
    ++pos_;
    if (row_out != nullptr) *row_out = row;
    return tuple;
  }
  if (sequential_) {
    // Streaming sweep over the pruned ranges (the single [0, limit_) range
    // when nothing pruned — identical walk to the pre-partition code).
    while (range_idx_ < ranges_.size()) {
      const RowRange& r = ranges_[range_idx_];
      if (pos_ < r.begin) pos_ = r.begin;
      if (pos_ >= r.end) {
        ++range_idx_;
        continue;
      }
      const RowId row = pos_;
      ++pos_;
      Result<const BitemporalTuple*> t = store_->Get(row);
      if (!t.ok()) continue;  // Tombstone.
      if (filter_ && !filter_(**t)) continue;
      if (row_out != nullptr) *row_out = row;
      return *t;
    }
    return nullptr;
  }
  while (pos_ < rows_.size()) {
    const RowId row = rows_[pos_];
    ++pos_;
    Result<const BitemporalTuple*> t = store_->Get(row);
    if (!t.ok()) continue;  // Tombstone (or a stale index entry).
    if (filter_ && !filter_(**t)) continue;
    if (row_out != nullptr) *row_out = row;
    return *t;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// VersionBatchScan
// ---------------------------------------------------------------------------

VersionBatchScan::VersionBatchScan(const VersionStore* store,
                                   BatchPredicates preds)
    : store_(store),
      sequential_(true),
      preds_(preds),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()),
      batch_rows_(store->options().batch_rows == 0 ? 1
                                                   : store->options().batch_rows) {
  assert(limit_ <= std::numeric_limits<uint32_t>::max() &&
         "selection vectors index rows as uint32");
  if (NeverMatches(preds_)) {
    limit_ = 0;
  } else {
    ranges_ = store->PruneRanges(preds_, limit_, nullptr);
    chunks_ = exec::RangeChunks(ranges_, batch_rows_);
    if (ScanStats* stats = store->options().scan_stats) {
      stats->batch_morsels_formed.fetch_add(chunks_.size(),
                                            std::memory_order_relaxed);
    }
  }
}

VersionBatchScan::VersionBatchScan(const VersionStore* store,
                                   std::vector<RowId> rows,
                                   BatchPredicates preds)
    : store_(store),
      sequential_(false),
      rows_(std::move(rows)),
      preds_(preds),
      limit_(store->version_count()),
      epoch_(store->mutation_epoch()),
      batch_rows_(store->options().batch_rows == 0 ? 1
                                                   : store->options().batch_rows) {
  assert(limit_ <= std::numeric_limits<uint32_t>::max() &&
         "selection vectors index rows as uint32");
  // Same candidate discipline as VersionScan: index probes yield lookup
  // order with possible repeats; sort and dedupe so batches ascend.
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
  if (NeverMatches(preds_)) rows_.clear();
}

VersionBatchScan::VersionBatchScan(const VersionStore* store, SnapshotPin pin,
                                   BatchPredicates preds)
    : store_(store),
      sequential_(true),
      preds_(preds),
      limit_(pin.rows),
      epoch_(0),
      snapshot_(true),
      pin_(pin),
      batch_rows_(store->options().batch_rows == 0
                      ? 1
                      : store->options().batch_rows) {
  assert(limit_ <= std::numeric_limits<uint32_t>::max() &&
         "selection vectors index rows as uint32");
  if (NeverMatches(preds_)) {
    limit_ = 0;
  } else {
    ranges_ = store->PruneRanges(preds_, limit_, &pin_);
    chunks_ = exec::RangeChunks(ranges_, batch_rows_);
    if (ScanStats* stats = store->options().scan_stats) {
      stats->batch_morsels_formed.fetch_add(chunks_.size(),
                                            std::memory_order_relaxed);
    }
  }
}

bool VersionBatchScan::ShouldRunParallel() const {
  // Snapshot scans stay on the calling reader thread (see VersionScan).
  if (snapshot_) return false;
  const VersionStoreOptions& o = store_->options();
  if (!o.parallel_scan || o.exec_pool == nullptr) return false;
  const size_t domain = sequential_ ? limit_ : rows_.size();
  return domain >= o.parallel_min_rows;
}

void VersionBatchScan::ProbeRangeSnapshot(size_t begin, size_t end,
                                          VersionBatch* out) const {
  // Reader-thread probe.  Differences from ProbeRange, all forced by the
  // concurrent writer:
  //  - `tt_end` is read once per row through the close-sequence patch
  //    (atomic loads) into a scratch column; the kernels then run over the
  //    scratch, so no plain kernel load can race an in-place close;
  //  - the kernel chain is *range-relative* (column pointers offset by
  //    `begin`, scratch indexed from 0) rather than rebased to absolute
  //    ids, because the scratch only spans `[begin, end)`;
  //  - the gather bypasses `Get()` (which reads writer-side size state)
  //    via `TuplePinned`.
  // Snapshot domains are always sequential, so `[begin, end)` is a
  // contiguous row range.
  const size_t n = end - begin;
  if (n == 0) return;
  const int64_t* vf = store_->chronon_valid_from() + begin;
  const int64_t* vt = store_->chronon_valid_to() + begin;
  const int64_t* ts = store_->chronon_tt_start() + begin;
  const uint8_t* live = store_->chronon_live() + begin;

  constexpr size_t kStackSel = 64;
  uint32_t stack_a[kStackSel];
  uint32_t stack_b[kStackSel];
  int64_t stack_te[kStackSel];
  std::vector<uint32_t> sel_a;
  std::vector<uint32_t> sel_b;
  std::vector<int64_t> te_heap;
  uint32_t* cur = stack_a;
  uint32_t* nxt = stack_b;
  int64_t* te = stack_te;
  if (n > kStackSel) {
    sel_a.resize(n);
    sel_b.resize(n);
    te_heap.resize(n);
    cur = sel_a.data();
    nxt = sel_b.data();
    te = te_heap.data();
  }
  store_->FillEffectiveTtEnd(begin, end, pin_.seq, te);

  size_t cnt = kernels::SelectLive(live, n, cur);
  if (preds_.txn_contains.has_value()) {
    cnt = kernels::SelectContainsRefine(ts, te, cur, cnt,
                                        preds_.txn_contains->days(), nxt);
    std::swap(cur, nxt);
  }
  if (preds_.txn_overlaps.has_value()) {
    cnt = kernels::SelectOverlapsRefine(ts, te, cur, cnt,
                                        preds_.txn_overlaps->begin().days(),
                                        preds_.txn_overlaps->end().days(), nxt);
    std::swap(cur, nxt);
  }
  if (preds_.txn_current) {
    cnt = kernels::SelectEndEqualsRefine(te, cur, cnt, Chronon::kForeverRep,
                                         nxt);
    std::swap(cur, nxt);
  }
  if (preds_.valid_overlaps.has_value()) {
    cnt = kernels::SelectOverlapsRefine(vf, vt, cur, cnt,
                                        preds_.valid_overlaps->begin().days(),
                                        preds_.valid_overlaps->end().days(),
                                        nxt);
    std::swap(cur, nxt);
  }

  for (size_t k = 0; k < cnt; ++k) {
    const size_t rel = cur[k];
    const RowId row = begin + rel;
    out->rows.push_back(row);
    out->tuples.push_back(store_->TuplePinned(row));
    out->valid_from.push_back(vf[rel]);
    out->valid_to.push_back(vt[rel]);
    out->tt_start.push_back(ts[rel]);
    out->tt_end.push_back(te[rel]);  // Pin-effective, not raw.
  }
}

void VersionBatchScan::ProbeRange(size_t begin, size_t end,
                                  VersionBatch* out) const {
  if (snapshot_) {
    ProbeRangeSnapshot(begin, end, out);
    return;
  }
  const size_t n = end - begin;
  if (n == 0) return;
  const int64_t* vf = store_->chronon_valid_from();
  const int64_t* vt = store_->chronon_valid_to();
  const int64_t* ts = store_->chronon_tt_start();
  const int64_t* te = store_->chronon_tt_end();
  const uint8_t* live = store_->chronon_live();

  // Ping-pong selection vectors: each kernel pass refines `cur` into `nxt`.
  // Small probes (index-nested-loop joins pull a handful of candidates per
  // outer tuple) stay on the stack; only real batches pay an allocation.
  constexpr size_t kStackSel = 64;
  uint32_t stack_a[kStackSel];
  uint32_t stack_b[kStackSel];
  std::vector<uint32_t> sel_a;
  std::vector<uint32_t> sel_b;
  uint32_t* cur = stack_a;
  uint32_t* nxt = stack_b;
  if (n > kStackSel) {
    sel_a.resize(n);
    sel_b.resize(n);
    cur = sel_a.data();
    nxt = sel_b.data();
  }
  size_t cnt;
  if (sequential_) {
    // Dense seed over the contiguous row range, rebased to absolute ids so
    // the refine passes index the full columns.
    cnt = kernels::SelectLive(live + begin, n, cur);
    for (size_t k = 0; k < cnt; ++k) cur[k] += static_cast<uint32_t>(begin);
  } else {
    // Index candidates are scattered row ids; mask stale (tombstoned)
    // entries first, exactly like the pull loop's Get() check.
    for (size_t k = 0; k < n; ++k) {
      cur[k] = static_cast<uint32_t>(rows_[begin + k]);
    }
    cnt = kernels::SelectLiveRefine(live, cur, n, nxt);
    std::swap(cur, nxt);
  }

  if (preds_.txn_contains.has_value()) {
    cnt = kernels::SelectContainsRefine(ts, te, cur, cnt,
                                        preds_.txn_contains->days(), nxt);
    std::swap(cur, nxt);
  }
  if (preds_.txn_overlaps.has_value()) {
    cnt = kernels::SelectOverlapsRefine(ts, te, cur, cnt,
                                        preds_.txn_overlaps->begin().days(),
                                        preds_.txn_overlaps->end().days(), nxt);
    std::swap(cur, nxt);
  }
  if (preds_.txn_current) {
    cnt = kernels::SelectEndEqualsRefine(te, cur, cnt, Chronon::kForeverRep,
                                         nxt);
    std::swap(cur, nxt);
  }
  if (preds_.valid_overlaps.has_value()) {
    cnt = kernels::SelectOverlapsRefine(vf, vt, cur, cnt,
                                        preds_.valid_overlaps->begin().days(),
                                        preds_.valid_overlaps->end().days(),
                                        nxt);
    std::swap(cur, nxt);
  }

  // Gather the survivors: borrowed tuple pointers plus copies of their
  // chronon entries, so downstream kernels keep running over flat arrays.
  for (size_t k = 0; k < cnt; ++k) {
    const RowId row = cur[k];
    Result<const BitemporalTuple*> t = store_->Get(row);
    assert(t.ok());  // Liveness was established by the kernel chain.
    out->rows.push_back(row);
    out->tuples.push_back(*t);
    out->valid_from.push_back(vf[row]);
    out->valid_to.push_back(vt[row]);
    out->tt_start.push_back(ts[row]);
    out->tt_end.push_back(te[row]);
  }
}

void VersionBatchScan::MaterializeParallel() {
  exec::MorselOptions morsels;
  morsels.morsel_rows = batch_rows_;
  if (sequential_) {
    // One morsel per pre-chunked range slice and one batch per morsel: the
    // chunk grid is `chunks_`, exactly what the streaming pull walks, so
    // batch boundaries are invariant across thread counts and identical to
    // the unpartitioned store whenever nothing pruned.
    batches_ = exec::ParallelScanRanges<VersionBatch>(
        store_->options().exec_pool, ranges_,
        [this](size_t begin, size_t end, std::vector<VersionBatch>* out) {
          VersionBatch batch;
          ProbeRange(begin, end, &batch);
          out->push_back(std::move(batch));
        },
        morsels);
  } else {
    batches_ = exec::ParallelScan<VersionBatch>(
        store_->options().exec_pool, rows_.size(),
        [this](size_t begin, size_t end, std::vector<VersionBatch>* out) {
          // One batch per batch_rows-aligned chunk.  Morsel boundaries are
          // multiples of batch_rows, so the sequential fallback (one probe
          // over the whole domain) slices identically — batch boundaries,
          // not just row order, are thread-count-invariant.
          for (size_t b = begin; b < end; b += batch_rows_) {
            VersionBatch batch;
            ProbeRange(b, std::min(end, b + batch_rows_), &batch);
            out->push_back(std::move(batch));
          }
        },
        morsels);
  }
  buffered_ = true;
  batch_pos_ = 0;
}

bool VersionBatchScan::Next(VersionBatch* out) {
  if (!snapshot_) {
    TDB_INVARIANT_CHECK(
        epoch_ == store_->mutation_epoch(),
        "VersionBatchScan advanced after a store mutation; index candidates "
        "and the row watermark are stale (open a fresh scan, or use a read "
        "snapshot for scans that must survive commits)");
  }
  if (!decided_) {
    decided_ = true;
    if (ShouldRunParallel()) MaterializeParallel();
  }
  if (buffered_) {
    while (batch_pos_ < batches_.size()) {
      VersionBatch& b = batches_[batch_pos_++];
      if (b.empty()) continue;
      *out = std::move(b);
      return true;
    }
    return false;
  }
  if (sequential_) {
    while (chunk_idx_ < chunks_.size()) {
      const RowRange c = chunks_[chunk_idx_++];
      out->Clear();
      ProbeRange(c.begin, c.end, out);
      if (!out->empty()) return true;
    }
    return false;
  }
  const size_t domain = rows_.size();
  while (pos_ < domain) {
    const size_t begin = pos_;
    const size_t end = std::min(domain, begin + batch_rows_);
    pos_ = end;
    out->Clear();
    ProbeRange(begin, end, out);
    if (!out->empty()) return true;
  }
  return false;
}

VersionStore::VersionStore(VersionStoreOptions options) : options_(options) {}

// The secondary-index mutators below return Status for API generality, but
// every call in this file maintains an index entry for a slot this store
// just validated (fresh row id, live version, period shape checked by the
// caller), so failure would mean the store's own invariants are broken —
// the drops are deliberate and each carries its reason.

void VersionStore::IndexInsert(RowId row, const BitemporalTuple& t) {
  if (options_.index_txn_time) {
    if (t.IsCurrentState()) {
      // Fresh row id: cannot already be in the current set.
      (void)txn_index_.AddCurrent(row, t.txn.begin());
    } else {
      // Closed period of a validated tuple: shape errors are impossible.
      (void)txn_index_.AddClosed(row, t.txn);
    }
  }
  if (options_.index_valid_time && !t.valid.IsEmpty()) {
    // Non-empty period guaranteed by the guard above.
    (void)valid_index_.Insert(t.valid, row);
  }
}

void VersionStore::IndexEraseValid(RowId row, const BitemporalTuple& t) {
  if (options_.index_valid_time && !t.valid.IsEmpty()) {
    // The entry was inserted by IndexInsert with this exact period.
    (void)valid_index_.Remove(t.valid, row);
  }
}

void VersionStore::AttrIndexInsert(RowId row, const BitemporalTuple& t) {
  for (auto& [attr, index] : attr_indexes_) {
    if (attr < t.values.size()) index->Insert(t.values[attr], row);
  }
}

void VersionStore::AttrIndexErase(RowId row, const BitemporalTuple& t) {
  for (auto& [attr, index] : attr_indexes_) {
    // Inserted by AttrIndexInsert with this exact key.
    if (attr < t.values.size()) (void)index->Remove(t.values[attr], row);
  }
}

void VersionStore::SyncChrononColumns(RowId row) {
  const Slot& slot = versions_[row];
  col_valid_from_[row] = slot.tuple.valid.begin().days();
  col_valid_to_[row] = slot.tuple.valid.end().days();
  col_tt_start_[row] = slot.tuple.txn.begin().days();
  col_tt_end_[row] = slot.tuple.txn.end().days();
  col_live_[row] = slot.tombstone ? 0 : 1;
}

RowId VersionStore::RawAppend(BitemporalTuple tuple) {
  RowId row = versions_.size();
  IndexInsert(row, tuple);
  AttrIndexInsert(row, tuple);
  versions_.push_back(Slot{std::move(tuple), false});
  col_valid_from_.push_back(0);
  col_valid_to_.push_back(0);
  col_tt_start_.push_back(0);
  col_tt_end_.push_back(0);
  col_live_.push_back(1);
  // A fresh row's close (if its tuple arrived already closed) predates any
  // snapshot that can see the row — the row itself is invisible until the
  // watermark covers it — so stamp 0 keeps it unconditionally visible.
  col_close_seq_.push_back(0);
  SyncChrononColumns(row);
  ++live_count_;
  ++mutation_epoch_;
  MaybeSealHot();
  return row;
}

void VersionStore::RawUnappend(RowId row) {
  assert(row + 1 == versions_.size());
  // Without MVCC the store seals eagerly at append, so an abort-time
  // unappend may claw the tail row back out of a sealed partition: unseal
  // it (remaining rows return to the hot tail and reseal on the next
  // append).  With MVCC this never triggers — only committed rows seal,
  // and committed rows never unappend.
  while (sealed_rows_ > row) {
    const uint64_t n = sealed_.size();
    TDB_INVARIANT_CHECK(options_.mvcc == nullptr && n > 0,
                        "unappend reached into a sealed partition with "
                        "MVCC snapshots enabled; sealed partitions must "
                        "only cover committed rows");
    sealed_rows_ = sealed_[n - 1].begin_row;
    sealed_count_.store(n - 1, std::memory_order_release);
    sealed_.pop_back();
  }
  Slot& slot = versions_[row];
  if (!slot.tombstone) {
    IndexEraseValid(row, slot.tuple);
    AttrIndexErase(row, slot.tuple);
    if (options_.index_txn_time && slot.tuple.IsCurrentState()) {
      // Remove from the current set by "closing at start" (zero-length
      // periods are dropped, not indexed).  The row is current by the
      // IsCurrentState() guard, so the close cannot miss.
      (void)txn_index_.CloseCurrent(row, slot.tuple.txn.begin());
    }
    --live_count_;
  }
  versions_.pop_back();
  col_valid_from_.pop_back();
  col_valid_to_.pop_back();
  col_tt_start_.pop_back();
  col_tt_end_.pop_back();
  col_live_.pop_back();
  col_close_seq_.pop_back();
  ++mutation_epoch_;
}

Status VersionStore::RawCloseTxn(RowId row, Chronon tt_end) {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  BitemporalTuple& t = versions_[row].tuple;
  if (!t.IsCurrentState()) {
    return Status::FailedPrecondition(
        "version's transaction period is already closed");
  }
  if (tt_end < t.txn.begin()) {
    return Status::InvalidArgument(
        "transaction end precedes transaction start");
  }
  if (options_.index_txn_time) {
    TDB_RETURN_IF_ERROR(txn_index_.CloseCurrent(row, tt_end));
  }
  t.txn = Period(t.txn.begin(), tt_end);
  // The close is the one in-place mutation snapshot readers must see — or
  // not see, depending on their pin.  Stamp the publishing commit sequence
  // first (relaxed), then the column entry (release): a reader that
  // observes the finite tt_end also observes its stamp and can patch the
  // close back to ∞ when it postdates the pin.  Only the tt_end entry is
  // touched — a full SyncChrononColumns here would plain-store the other
  // four entries and race concurrent snapshot loads, even though the
  // values are unchanged.
  //
  // During WAL replay / checkpoint load there is no MvccState commit
  // sequence yet meaningful per-transaction; recovery stamps still use
  // commit_seq+1 and the end-of-recovery publication advances commit_seq
  // past them, so recovered closes are visible to every later pin.
  const uint64_t stamp =
      options_.mvcc == nullptr
          ? 0
          : options_.mvcc->commit_seq.load(std::memory_order_relaxed) + 1;
  mvcc::StoreRelaxed(&col_close_seq_[row], stamp);
  mvcc::StoreRelease(&col_tt_end_[row], tt_end.days());
  OnRowClosed(row, tt_end, stamp);
  ++mutation_epoch_;
  return Status::OK();
}

void VersionStore::RawReopenTxn(RowId row, Chronon old_end) {
  assert(old_end.IsForever());
  Slot& slot = versions_[row];
  Chronon start = slot.tuple.txn.begin();
  if (options_.index_txn_time) {
    // Undo of a close this transaction performed; the closed entry exists.
    (void)txn_index_.ReopenAsCurrent(row, start, slot.tuple.txn.end());
  }
  slot.tuple.txn = Period(start, old_end);
  // Abort-time undo of a close.  Restore ∞ atomically (a snapshot reader
  // may be loading this entry right now); the stale close stamp is left in
  // place deliberately — with tt_end = ∞ the row reads as current no
  // matter what the stamp says, and a later close will restamp it.
  mvcc::StoreRelease(&col_tt_end_[row], old_end.days());
  OnRowReopened(row);
  ++mutation_epoch_;
}

Status VersionStore::RawPhysicalDelete(RowId row) {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  Slot& slot = versions_[row];
  IndexEraseValid(row, slot.tuple);
  AttrIndexErase(row, slot.tuple);
  if (options_.index_txn_time && slot.tuple.IsCurrentState()) {
    // Current by the guard; close-at-start drops the index entry.
    (void)txn_index_.CloseCurrent(row, slot.tuple.txn.begin());
  }
  slot.tombstone = true;
  col_live_[row] = 0;
  --live_count_;
  RepatchSealedSynopsis(row);
  ++mutation_epoch_;
  return Status::OK();
}

void VersionStore::RawUndelete(RowId row, BitemporalTuple tuple) {
  Slot& slot = versions_[row];
  assert(slot.tombstone);
  slot.tuple = std::move(tuple);
  slot.tombstone = false;
  SyncChrononColumns(row);
  IndexInsert(row, slot.tuple);
  AttrIndexInsert(row, slot.tuple);
  ++live_count_;
  RepatchSealedSynopsis(row);
  ++mutation_epoch_;
}

Status VersionStore::RawPhysicalUpdate(RowId row, BitemporalTuple tuple) {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  Slot& slot = versions_[row];
  IndexEraseValid(row, slot.tuple);
  AttrIndexErase(row, slot.tuple);
  if (options_.index_txn_time && slot.tuple.IsCurrentState()) {
    // Current by the guard; close-at-start drops the index entry.
    (void)txn_index_.CloseCurrent(row, slot.tuple.txn.begin());
  }
  slot.tuple = std::move(tuple);
  SyncChrononColumns(row);
  IndexInsert(row, slot.tuple);
  AttrIndexInsert(row, slot.tuple);
  RepatchSealedSynopsis(row);
  ++mutation_epoch_;
  return Status::OK();
}

Result<RowId> VersionStore::Append(Transaction* txn, BitemporalTuple tuple) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("append outside an active transaction");
  }
  BitemporalTuple copy = tuple;
  RowId row = RawAppend(std::move(tuple));
  txn->PushUndo([this, row] { RawUnappend(row); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kAppend;
    op.row = row;
    op.tuple = std::move(copy);
    observer_(op);
  }
  return row;
}

Status VersionStore::CloseTxn(Transaction* txn, RowId row, Chronon tt_end) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("close outside an active transaction");
  }
  TDB_RETURN_IF_ERROR(RawCloseTxn(row, tt_end));
  txn->PushUndo([this, row] { RawReopenTxn(row, Chronon::Forever()); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kCloseTxn;
    op.row = row;
    op.tt_end = tt_end;
    observer_(op);
  }
  return Status::OK();
}

Status VersionStore::PhysicalDelete(Transaction* txn, RowId row) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("delete outside an active transaction");
  }
  // In-place history rewrite: fence out snapshot readers for the rest of
  // this transaction (including a potential abort-time undo).  The owning
  // Database lowers the fence at commit/abort.
  if (options_.mvcc != nullptr) {
    TDB_RETURN_IF_ERROR(options_.mvcc->BeginCorrection());
  }
  TDB_ASSIGN_OR_RETURN(const BitemporalTuple* old, Get(row));
  BitemporalTuple saved = *old;
  TDB_RETURN_IF_ERROR(RawPhysicalDelete(row));
  txn->PushUndo([this, row, saved] { RawUndelete(row, saved); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kPhysicalDelete;
    op.row = row;
    observer_(op);
  }
  return Status::OK();
}

Status VersionStore::PhysicalUpdate(Transaction* txn, RowId row,
                                    BitemporalTuple tuple) {
  if (txn == nullptr || !txn->IsActive()) {
    return Status::FailedPrecondition("update outside an active transaction");
  }
  // Same correction fence as PhysicalDelete.
  if (options_.mvcc != nullptr) {
    TDB_RETURN_IF_ERROR(options_.mvcc->BeginCorrection());
  }
  TDB_ASSIGN_OR_RETURN(const BitemporalTuple* old, Get(row));
  BitemporalTuple saved = *old;
  BitemporalTuple copy = tuple;
  TDB_RETURN_IF_ERROR(RawPhysicalUpdate(row, std::move(tuple)));
  // Undo restores the overwritten tuple; the row was live when the update
  // succeeded, so the inverse update cannot fail.
  txn->PushUndo([this, row, saved] { (void)RawPhysicalUpdate(row, saved); });
  if (observer_) {
    VersionOp op;
    op.kind = VersionOp::Kind::kPhysicalUpdate;
    op.row = row;
    op.tuple = std::move(copy);
    observer_(op);
  }
  return Status::OK();
}

Result<const BitemporalTuple*> VersionStore::Get(RowId row) const {
  if (row >= versions_.size() || versions_[row].tombstone) {
    return Status::NotFound("no such version");
  }
  return &versions_[row].tuple;
}

void VersionStore::ForEach(
    const std::function<void(RowId, const BitemporalTuple&)>& fn) const {
  for (RowId row = 0; row < versions_.size(); ++row) {
    if (!versions_[row].tombstone) fn(row, versions_[row].tuple);
  }
}

std::vector<RowId> VersionStore::TxnAsOf(Chronon t) const {
  std::vector<RowId> out;
  if (options_.index_txn_time) {
    txn_index_.AsOf(t, [&](RowId row) { out.push_back(row); });
  } else {
    ForEach([&](RowId row, const BitemporalTuple& tuple) {
      if (tuple.txn.Contains(t)) out.push_back(row);
    });
  }
  return out;
}

std::vector<RowId> VersionStore::CurrentRows() const {
  std::vector<RowId> out;
  if (options_.index_txn_time) {
    txn_index_.Current([&](RowId row) { out.push_back(row); });
  } else {
    ForEach([&](RowId row, const BitemporalTuple& tuple) {
      if (tuple.IsCurrentState()) out.push_back(row);
    });
  }
  return out;
}

std::vector<RowId> VersionStore::ValidOverlapping(Period q) const {
  std::vector<RowId> out;
  if (options_.index_valid_time) {
    valid_index_.Overlapping(q, [&](Period, RowId row) { out.push_back(row); });
  } else {
    ForEach([&](RowId row, const BitemporalTuple& tuple) {
      if (tuple.valid.Overlaps(q)) out.push_back(row);
    });
  }
  return out;
}

VersionScan VersionStore::ScanAll(VersionFilter extra) const {
  return VersionScan(this, std::move(extra));
}

namespace {

// Composes a time-window predicate with a caller-supplied residual filter.
VersionFilter Compose(VersionFilter window, VersionFilter extra) {
  if (!extra) return window;
  if (!window) return extra;
  return [window = std::move(window), extra = std::move(extra)](
             const BitemporalTuple& t) { return window(t) && extra(t); };
}

}  // namespace

// The sequential (index-off) arms below hand the scan their window twice:
// once as the composed row filter (which decides matches, exactly as
// before) and once as a structured prune hint so the sweep can skip sealed
// partitions the window provably misses.  Index arms need no hint — the
// probe already visits only candidate rows.

VersionScan VersionStore::ScanCurrent(VersionFilter extra) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Current([&](RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  BatchPredicates hint;
  hint.txn_current = true;
  return VersionScan(
      this, Compose([](const BitemporalTuple& t) { return t.IsCurrentState(); },
                    std::move(extra)),
      hint);
}

VersionScan VersionStore::ScanAsOf(Chronon t, VersionFilter extra) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.AsOf(t, [&](RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  BatchPredicates hint;
  hint.txn_contains = t;
  return VersionScan(
      this,
      Compose([t](const BitemporalTuple& v) { return v.txn.Contains(t); },
              std::move(extra)),
      hint);
}

VersionScan VersionStore::ScanTxnOverlapping(Period q,
                                             VersionFilter extra) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Overlapping(q, [&](RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  BatchPredicates hint;
  hint.txn_overlaps = q;
  return VersionScan(
      this,
      Compose([q](const BitemporalTuple& v) { return v.txn.Overlaps(q); },
              std::move(extra)),
      hint);
}

VersionScan VersionStore::ScanValidDuring(Period q, VersionFilter extra) const {
  if (options_.index_valid_time) {
    std::vector<RowId> rows;
    valid_index_.Overlapping(q, [&](Period, RowId row) { rows.push_back(row); });
    return VersionScan(this, std::move(rows), std::move(extra));
  }
  BatchPredicates hint;
  hint.valid_overlaps = q;
  return VersionScan(
      this,
      Compose([q](const BitemporalTuple& v) { return v.valid.Overlaps(q); },
              std::move(extra)),
      hint);
}

// The Batch* entry points mirror the row entry points branch-for-branch:
// with the relevant index on, the same index probe yields the candidate
// rows (probes are exact, no residual window check); without it, the
// window becomes a structured BatchPredicates entry evaluated by the
// columnar kernels — the kernel semantics match Period bit-for-bit, so
// both paths visit the same rows in the same order as the row scan.

VersionBatchScan VersionStore::BatchScanAll(BatchPredicates residual) const {
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanCurrent(BatchPredicates residual) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Current([&](RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.txn_current = true;
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanAsOf(Chronon t,
                                             BatchPredicates residual) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.AsOf(t, [&](RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.txn_contains = t;
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanTxnOverlapping(
    Period q, BatchPredicates residual) const {
  if (options_.index_txn_time) {
    std::vector<RowId> rows;
    txn_index_.Overlapping(q, [&](RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.txn_overlaps = q;
  return VersionBatchScan(this, std::move(residual));
}

VersionBatchScan VersionStore::BatchScanValidDuring(
    Period q, BatchPredicates residual) const {
  if (options_.index_valid_time) {
    std::vector<RowId> rows;
    valid_index_.Overlapping(q, [&](Period, RowId row) { rows.push_back(row); });
    return VersionBatchScan(this, std::move(rows), std::move(residual));
  }
  residual.valid_overlaps = q;
  return VersionBatchScan(this, std::move(residual));
}

Status VersionStore::ApplyReplay(const VersionOp& op) {
  switch (op.kind) {
    case VersionOp::Kind::kAppend: {
      RowId row = RawAppend(op.tuple);
      if (row != op.row) {
        return Status::Corruption(
            "replay row id mismatch: log does not match store state");
      }
      return Status::OK();
    }
    case VersionOp::Kind::kCloseTxn:
      return RawCloseTxn(op.row, op.tt_end);
    case VersionOp::Kind::kPhysicalDelete:
      return RawPhysicalDelete(op.row);
    case VersionOp::Kind::kPhysicalUpdate:
      return RawPhysicalUpdate(op.row, op.tuple);
  }
  return Status::Corruption("unknown version op in log");
}

void VersionStore::ForEachSlot(
    const std::function<void(RowId, const BitemporalTuple*)>& fn) const {
  for (RowId row = 0; row < versions_.size(); ++row) {
    fn(row, versions_[row].tombstone ? nullptr : &versions_[row].tuple);
  }
}

RowId VersionStore::LoadSlot(std::optional<BitemporalTuple> tuple) {
  if (tuple.has_value()) {
    return RawAppend(std::move(*tuple));
  }
  RowId row = versions_.size();
  versions_.push_back(Slot{BitemporalTuple{}, true});
  col_valid_from_.push_back(0);
  col_valid_to_.push_back(0);
  col_tt_start_.push_back(0);
  col_tt_end_.push_back(0);
  col_live_.push_back(0);
  col_close_seq_.push_back(0);
  ++mutation_epoch_;
  MaybeSealHot();
  return row;
}

size_t VersionStore::CompactTombstones() {
  // In-place rewrite of rows under the watermark: the caller (the Database
  // checkpoint path) holds the correction fence, so no snapshot reader can
  // be pinned while this runs and none can pin until it finishes.
  size_t reclaimed = versions_.size() - live_count_;
  if (reclaimed == 0) return 0;  // Nothing to do; don't disturb the slots.
  const size_t old_size = versions_.size();
  size_t write = 0;
  for (size_t read = 0; read < old_size; ++read) {
    if (versions_[read].tombstone) continue;
    if (write != read) versions_[write] = std::move(versions_[read]);
    ++write;
  }
  versions_.Truncate(write);
  col_valid_from_.Truncate(write);
  col_valid_to_.Truncate(write);
  col_tt_start_.Truncate(write);
  col_tt_end_.Truncate(write);
  col_live_.Truncate(write);
  col_close_seq_.Truncate(write);
  // Survivors are all committed (compaction runs at a checkpoint boundary,
  // no active transaction) and every pin taken after the fence drops has a
  // sequence at least the current one, so stamp 0 — unconditionally
  // visible — is correct and keeps compaction idempotent across reopens.
  for (size_t row = 0; row < write; ++row) col_close_seq_[row] = 0;
  // No reader holds a retired column buffer while the fence is up; give
  // the memory back.
  col_valid_from_.ReleaseRetired();
  col_valid_to_.ReleaseRetired();
  col_tt_start_.ReleaseRetired();
  col_tt_end_.ReleaseRetired();
  col_live_.ReleaseRetired();
  col_close_seq_.ReleaseRetired();
  // Row ids changed: every sealed boundary and synopsis is stale.  Drop
  // them (the correction fence guarantees no reader holds a partition
  // count) and let the re-publication below reseal the compacted prefix.
  sealed_count_.store(0, std::memory_order_release);
  sealed_.Truncate(0);
  sealed_rows_ = 0;
  // Row ids changed: rebuild every index from scratch.
  txn_index_.Clear();
  valid_index_.Clear();
  for (auto& [attr, index] : attr_indexes_) index->Clear();
  for (RowId row = 0; row < versions_.size(); ++row) {
    SyncChrononColumns(row);
    IndexInsert(row, versions_[row].tuple);
    AttrIndexInsert(row, versions_[row].tuple);
  }
  // The published watermark now exceeds the row count; re-publish so later
  // pins see the compacted extent.  (No pin can exist right now; this also
  // reseals the compacted history into fresh partitions.)
  PublishCommittedRows();
  ++mutation_epoch_;
  return reclaimed;
}

Status VersionStore::CreateAttributeIndex(size_t attr_index) {
  if (attr_indexes_.contains(attr_index)) {
    return Status::AlreadyExists("attribute is already indexed");
  }
  auto index = std::make_unique<BTreeIndex>();
  for (RowId row = 0; row < versions_.size(); ++row) {
    const Slot& slot = versions_[row];
    if (slot.tombstone) continue;
    if (attr_index >= slot.tuple.values.size()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    index->Insert(slot.tuple.values[attr_index], row);
  }
  attr_indexes_.emplace(attr_index, std::move(index));
  return Status::OK();
}

Result<std::vector<RowId>> VersionStore::LookupAttribute(
    size_t attr_index, const Value& key) const {
  auto it = attr_indexes_.find(attr_index);
  if (it == attr_indexes_.end()) {
    return Status::FailedPrecondition("attribute is not indexed");
  }
  return it->second->Lookup(key);
}

size_t VersionStore::current_count() const {
  if (options_.index_txn_time) return txn_index_.current_count();
  size_t n = 0;
  ForEach([&](RowId, const BitemporalTuple& t) {
    if (t.IsCurrentState()) ++n;
  });
  return n;
}

size_t VersionStore::ApproximateBytes() const {
  size_t bytes = versions_.size() * (sizeof(Slot) + 4 * sizeof(int64_t));
  for (RowId row = 0; row < versions_.size(); ++row) {
    const Slot& s = versions_[row];
    for (const Value& v : s.tuple.values) {
      bytes += sizeof(Value);
      if (v.type() == ValueType::kString) bytes += v.AsString().size();
    }
  }
  return bytes;
}

VersionScan VersionStore::ScanSnapshot(SnapshotPin pin,
                                       BatchPredicates preds) const {
  return VersionScan(this, pin, std::move(preds));
}

VersionBatchScan VersionStore::BatchScanSnapshot(SnapshotPin pin,
                                                 BatchPredicates preds) const {
  return VersionBatchScan(this, pin, std::move(preds));
}

void VersionStore::FillEffectiveTtEnd(size_t begin, size_t end,
                                      uint64_t snap_seq, int64_t* out) const {
  for (size_t row = begin; row < end; ++row) {
    out[row - begin] = EffectiveTtEnd(row, snap_seq);
  }
}

// --- Epoch partitions --------------------------------------------------------

void VersionStore::MaybeSealHot() {
  if (loading_ || options_.partition_rows == 0) return;
  // Only rows that can never be unappended may seal.  With MVCC that is the
  // committed watermark (an abort claws back rows above it, never below);
  // without MVCC there are no concurrent readers, so the whole store is
  // sealable and RawUnappend simply unseals on the way back down.
  const size_t cap = options_.mvcc == nullptr
                         ? versions_.size()
                         : committed_rows_.load(std::memory_order_relaxed);
  while (cap > sealed_rows_ && cap - sealed_rows_ >= options_.partition_rows) {
    PartitionSynopsis s;
    s.begin_row = sealed_rows_;
    s.end_row = sealed_rows_ + options_.partition_rows;
    ComputeSynopsis(&s);
    // Publish order matters under concurrent pinned readers: the synopsis is
    // fully written into the slab first, the count release-stored last, so a
    // reader that observes index i < sealed_count_ observes i's final bytes.
    sealed_.push_back(s);
    sealed_rows_ = s.end_row;
    sealed_count_.store(sealed_.size(), std::memory_order_release);
  }
}

void VersionStore::ComputeSynopsis(PartitionSynopsis* s) const {
  s->min_valid_from = Chronon::kForeverRep;
  s->max_valid_to = Chronon::kBeginningRep;
  s->min_tt_start = Chronon::kForeverRep;
  s->max_finite_tt_end = Chronon::kBeginningRep;
  s->current_rows = 0;
  s->last_close_seq = 0;
  s->live_rows = 0;
  for (KeySketch& k : s->sketches) k = KeySketch{};
  for (RowId row = s->begin_row; row < s->end_row; ++row) {
    if (col_live_[row] == 0) continue;  // Tombstone: no time, no keys.
    ++s->live_rows;
    const int64_t vf = col_valid_from_[row];
    const int64_t vt = col_valid_to_[row];
    if (vf < vt) {  // Empty valid periods overlap nothing; skip the bounds.
      if (vf < s->min_valid_from) s->min_valid_from = vf;
      if (vt > s->max_valid_to) s->max_valid_to = vt;
    }
    const int64_t ts = col_tt_start_[row];
    if (ts < s->min_tt_start) s->min_tt_start = ts;
    const int64_t te = col_tt_end_[row];  // Writer thread: plain load is fine.
    if (te == Chronon::kForeverRep) {
      ++s->current_rows;
    } else if (te > s->max_finite_tt_end) {
      s->max_finite_tt_end = te;
    }
    const uint64_t stamp = col_close_seq_[row];
    if (stamp > s->last_close_seq) s->last_close_seq = stamp;
    const Slot& slot = versions_[row];
    const size_t nattrs = slot.tuple.values.size();
    for (size_t a = 0; a < PartitionSynopsis::kSketchAttrs && a < nattrs; ++a) {
      s->sketches[a].Add(slot.tuple.values[a]);
    }
  }
}

size_t VersionStore::SealedIndexOf(RowId row) const {
  if (row >= sealed_rows_) return sealed_.size();
  // Partitions are contiguous from row 0 in ascending order: binary-search
  // the first partition whose end exceeds `row`.
  size_t lo = 0;
  size_t hi = sealed_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (sealed_[mid].end_row <= row) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void VersionStore::OnRowClosed(RowId row, Chronon tt_end, uint64_t stamp) {
  if (row >= sealed_rows_) return;  // Hot rows reseal from scratch.
  // A "close" at ∞ leaves the row current (ScanAll-era histories do this);
  // nothing about the synopsis changes.
  if (tt_end.days() == Chronon::kForeverRep) return;
  PartitionSynopsis& s = sealed_[SealedIndexOf(row)];
  // Monotone maxes first (relaxed), the currency decrement last (release):
  // a reader that acquires current_rows == 0 from this store is guaranteed
  // to see the max_finite_tt_end / last_close_seq this close contributed,
  // so a finite tt upper bound is never paired with a missing close.
  if (tt_end.days() > mvcc::LoadRelaxed(&s.max_finite_tt_end)) {
    mvcc::StoreRelaxed(&s.max_finite_tt_end, tt_end.days());
  }
  if (stamp > mvcc::LoadRelaxed(&s.last_close_seq)) {
    mvcc::StoreRelaxed(&s.last_close_seq, stamp);
  }
  mvcc::StoreRelease(&s.current_rows, mvcc::LoadRelaxed(&s.current_rows) - 1);
}

void VersionStore::OnRowReopened(RowId row) {
  if (row >= sealed_rows_) return;
  PartitionSynopsis& s = sealed_[SealedIndexOf(row)];
  // The undo restores currency; the (possibly stale) maxes left behind by
  // the aborted close only widen the bounds — conservative, never unsound.
  mvcc::StoreRelease(&s.current_rows, mvcc::LoadRelaxed(&s.current_rows) + 1);
}

void VersionStore::RepatchSealedSynopsis(RowId row) {
  if (row >= sealed_rows_) return;
  const size_t i = SealedIndexOf(row);
  // Corrections rewrite history arbitrarily (delete, undelete, full tuple
  // replacement), so incremental patching cannot stay tight: recompute the
  // partition's synopsis exactly.  The caller holds the correction fence
  // when MVCC is on, so the plain overwrite cannot tear under a reader.
  PartitionSynopsis fresh;
  fresh.begin_row = sealed_[i].begin_row;
  fresh.end_row = sealed_[i].end_row;
  ComputeSynopsis(&fresh);
  sealed_[i] = fresh;
}

Status VersionStore::InstallSealedPartitions(
    std::vector<PartitionSynopsis> parts) {
  if (options_.partition_rows == 0) return Status::OK();
  uint64_t expect_begin = 0;
  for (const PartitionSynopsis& p : parts) {
    if (p.begin_row != expect_begin || p.end_row <= p.begin_row) {
      return Status::Corruption(
          "checkpoint partition synopses are not contiguous from row 0");
    }
    expect_begin = p.end_row;
  }
  if (expect_begin > versions_.size()) {
    return Status::Corruption(
        "checkpoint partition extent exceeds the loaded store");
  }
  for (PartitionSynopsis& p : parts) {
    // Commit sequences do not survive a restart: recovered closes are
    // unconditionally visible (the close-stamp column also reloads as 0).
    p.last_close_seq = 0;
    sealed_.push_back(p);
  }
  sealed_rows_ = expect_begin;
  sealed_count_.store(sealed_.size(), std::memory_order_release);
  return Status::OK();
}

std::vector<RowRange> VersionStore::PruneRanges(const BatchPredicates& preds,
                                                size_t limit,
                                                const SnapshotPin* pin) const {
  std::vector<RowRange> out;
  if (limit == 0) return out;
  const bool predicated = preds.valid_overlaps.has_value() ||
                          preds.txn_overlaps.has_value() ||
                          preds.txn_contains.has_value() || preds.txn_current ||
                          pin != nullptr;
  // Snapshot readers bound themselves by the release-published count (the
  // synopsis bytes of every index below it are final); the writer thread may
  // use its own directory size directly.
  const uint64_t sealed_count =
      pin == nullptr ? sealed_.size()
                     : sealed_count_.load(std::memory_order_acquire);
  if (!options_.partition_pruning || !predicated || sealed_count == 0) {
    out.push_back(RowRange{0, limit});
    return out;
  }
  uint64_t considered = 0;
  uint64_t pruned_tt = 0;
  uint64_t pruned_vt = 0;
  uint64_t pruned_snap = 0;
  uint64_t scanned_parts = 0;
  uint64_t scanned_rows = 0;
  // Merging adjacent survivors keeps the no-prune result the single range
  // [0, limit) — downstream chunk geometry then matches the unpartitioned
  // store bit for bit.
  auto emit = [&out](size_t b, size_t e) {
    if (!out.empty() && out.back().end == b) {
      out.back().end = e;
    } else {
      out.push_back(RowRange{b, e});
    }
  };
  size_t covered = 0;
  for (uint64_t i = 0; i < sealed_count; ++i) {
    const PartitionSynopsis& s = pin ? sealed_.AtPinned(i) : sealed_[i];
    if (s.begin_row >= limit) {
      if (pin == nullptr) break;
      // Sealed entirely at/above the pin's watermark: invisible by
      // construction.
      ++considered;
      ++pruned_snap;
      continue;
    }
    ++considered;
    const size_t b = s.begin_row;
    const size_t e = s.end_row < limit ? static_cast<size_t>(s.end_row) : limit;
    covered = e;
    if (s.live_rows == 0) {  // All tombstones: nothing can match anything.
      ++pruned_tt;
      continue;
    }
    bool pruned = false;
    if (preds.txn_contains || preds.txn_overlaps || preds.txn_current) {
      // The partition's transaction-time upper bound.  Any still-current row
      // (or, under a pin, any close the pin must un-see) extends it to ∞.
      // Acquire current_rows *first*: reading 0 synchronizes with the
      // release-decrement of the close that zeroed it, making that close's
      // relaxed max/stamp stores visible below.
      const uint64_t cur = mvcc::LoadAcquire(&s.current_rows);
      const bool tt_unbounded =
          cur > 0 ||
          (pin != nullptr && mvcc::LoadRelaxed(&s.last_close_seq) > pin->seq);
      const int64_t tt_ub = tt_unbounded
                                ? Chronon::kForeverRep
                                : mvcc::LoadRelaxed(&s.max_finite_tt_end);
      if (preds.txn_contains) {
        const int64_t t = preds.txn_contains->days();
        if (t < s.min_tt_start || t >= tt_ub) pruned = true;
      }
      if (!pruned && preds.txn_overlaps) {
        const int64_t qb = preds.txn_overlaps->begin().days();
        const int64_t qe = preds.txn_overlaps->end().days();
        if (s.min_tt_start >= qe || qb >= tt_ub) pruned = true;
      }
      if (!pruned && preds.txn_current && !tt_unbounded) pruned = true;
      if (pruned) {
        ++pruned_tt;
        continue;
      }
    }
    if (preds.valid_overlaps) {
      const int64_t qb = preds.valid_overlaps->begin().days();
      const int64_t qe = preds.valid_overlaps->end().days();
      if (s.min_valid_from >= qe || qb >= s.max_valid_to) {
        ++pruned_vt;
        continue;
      }
    }
    emit(b, e);
    ++scanned_parts;
    scanned_rows += e - b;
  }
  // The hot tail above the sealed extent has no synopsis: always scan it.
  if (covered < limit) {
    emit(covered, limit);
    scanned_rows += limit - covered;
  }
  if (ScanStats* stats = options_.scan_stats) {
    stats->partitions_considered.fetch_add(considered,
                                           std::memory_order_relaxed);
    stats->partitions_pruned_tt.fetch_add(pruned_tt,
                                          std::memory_order_relaxed);
    stats->partitions_pruned_vt.fetch_add(pruned_vt,
                                          std::memory_order_relaxed);
    stats->partitions_pruned_snapshot.fetch_add(pruned_snap,
                                                std::memory_order_relaxed);
    stats->partitions_scanned.fetch_add(scanned_parts,
                                        std::memory_order_relaxed);
    stats->rows_scanned.fetch_add(scanned_rows, std::memory_order_relaxed);
  }
  return out;
}

}  // namespace temporadb
