#ifndef TEMPORADB_TEMPORAL_STORED_RELATION_H_
#define TEMPORADB_TEMPORAL_STORED_RELATION_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "temporal/version_store.h"
#include "txn/transaction.h"

namespace temporadb {

/// A predicate over a tuple's explicit attribute values, used to select the
/// targets of `delete`/`replace` statements.  The TQuel evaluator compiles
/// `where` clauses down to this.
using TuplePredicate = std::function<bool(const std::vector<Value>&)>;

/// A predicate over a tuple's valid period — the DML `when` clause
/// (e.g. `delete f when f precede "01/01/80"`).  Null means "no when
/// clause"; only kinds with valid time accept one.
using PeriodPredicate = std::function<bool(Period)>;

/// One attribute assignment of a `replace` statement.  `compute` receives
/// the tuple's *old* values, so assignments like `salary = f.salary * 1.1`
/// work; use `ConstUpdate` for plain constants.
struct UpdateAction {
  size_t index;
  std::function<Result<Value>(const std::vector<Value>&)> compute;
};
using UpdateSpec = std::vector<UpdateAction>;

/// An assignment to a constant value.
UpdateAction ConstUpdate(size_t index, Value v);

/// The time windows a query pushes down into a relation scan.  Both are
/// *candidate pruning* hints: a scan may yield a superset of the matching
/// versions (the evaluator re-checks exact predicates per tuple), but must
/// never drop a version whose transaction period overlaps `asof` / whose
/// valid period overlaps `valid_during`.
struct ScanSpec {
  /// Transaction-time window of an `as of [... through ...]` clause.
  std::optional<Period> asof;
  /// Valid-time window implied by a `when` / `valid` predicate.
  std::optional<Period> valid_during;
  /// When set, the scan runs in snapshot-isolated mode against this pin
  /// (see `Database::BeginReadSnapshot`): it is safe on a non-writer thread
  /// during concurrent commits, sees only rows/closes published at or
  /// before the pin, never touches the store's mutable indexes, and is
  /// exempt from the mutation-epoch staleness check.
  std::optional<SnapshotPin> snapshot;
};

/// Applies an update spec to a copy of `values`.
Result<std::vector<Value>> ApplyUpdates(const UpdateSpec& updates,
                                        const std::vector<Value>& values);

/// Base class of the four stored-relation kinds.
///
/// The subclasses map one-to-one onto the paper's taxonomy (Figure 10):
///
/// | class                | time maintained        | update discipline     |
/// |----------------------|------------------------|-----------------------|
/// | `StaticRelation`     | none                   | destructive, in place |
/// | `RollbackRelation`   | transaction            | append-only states    |
/// | `HistoricalRelation` | valid                  | arbitrary correction  |
/// | `TemporalRelation`   | transaction and valid  | append-only histories |
///
/// The shared DML vocabulary is `Append` / `DeleteWhere` / `ReplaceWhere`,
/// each taking an optional *valid-time period*.  Kinds that do not support
/// valid time reject a supplied period with `NotSupported` — this is the
/// taxonomy made executable: a retroactive change is exactly a DML statement
/// whose valid period differs from "now on", and only historical/temporal
/// relations accept one (§4.3/§4.4).
class StoredRelation {
 public:
  explicit StoredRelation(RelationInfo info, VersionStoreOptions options = {})
      : info_(std::move(info)), store_(options) {}
  virtual ~StoredRelation() = default;

  StoredRelation(const StoredRelation&) = delete;
  StoredRelation& operator=(const StoredRelation&) = delete;

  const RelationInfo& info() const { return info_; }
  const Schema& schema() const { return info_.schema; }
  TemporalClass temporal_class() const { return info_.temporal_class; }
  TemporalDataModel data_model() const { return info_.data_model; }

  /// Inserts a tuple.  `valid` is the fact's valid-time period; nullopt
  /// means "from the transaction timestamp on" for kinds with valid time
  /// and is required to be nullopt for kinds without it.
  virtual Status Append(Transaction* txn, std::vector<Value> values,
                        std::optional<Period> valid) = 0;

  /// Deletes the facts matching `pred` over the valid period `valid`
  /// (nullopt: "from the transaction timestamp on" with valid time, the
  /// whole tuple without).  The optional `when` predicate additionally
  /// filters targets by their valid period (TQuel's `when` on DML); it is
  /// NotSupported on kinds without valid time.  Returns the number of
  /// tuples affected.
  Result<size_t> DeleteWhere(Transaction* txn, const TuplePredicate& pred,
                             std::optional<Period> valid,
                             const PeriodPredicate& when = nullptr);

  /// Applies `updates` to the facts matching `pred` (and `when`) over the
  /// valid period.  Returns the number of tuples affected.
  Result<size_t> ReplaceWhere(Transaction* txn, const TuplePredicate& pred,
                              const UpdateSpec& updates,
                              std::optional<Period> valid,
                              const PeriodPredicate& when = nullptr);

  /// Historical-only physical correction: removes matching versions
  /// entirely, leaving no trace (§4.3: "there is no record kept of the
  /// errors that have been corrected").  NotSupported elsewhere.
  virtual Result<size_t> CorrectErase(Transaction* txn,
                                      const TuplePredicate& pred);

  /// Index-aware scan entry point.  Each kind resolves `spec` against the
  /// time dimensions it maintains and the store's index configuration,
  /// picking the narrowest access path:
  ///
  /// | kind       | `asof`                  | `valid_during`                |
  /// |------------|-------------------------|-------------------------------|
  /// | static     | ignored (no time)       | ignored (no time)             |
  /// | rollback   | snapshot-index probe    | ignored (no valid time)       |
  /// | historical | ignored (no txn time)   | interval-index probe          |
  /// | temporal   | snapshot-index probe    | interval index / residual     |
  ///
  /// Without `asof`, kinds with transaction time scan only the current
  /// stored state.  With `store()->options().time_pushdown == false`, every
  /// window degrades to a sequential sweep plus filter (the ablation
  /// baseline).  Yield order is ascending row id regardless of path.
  virtual VersionScan Scan(const ScanSpec& spec) const = 0;

  /// Batch counterpart of `Scan`: identical access-path selection, but the
  /// scan yields columnar `VersionBatch`es whose residual time predicates
  /// run as branch-free kernels over the store's chronon columns.  Yields
  /// exactly the row sequence of `Scan(spec)`, sliced into batches of
  /// `store()->options().batch_rows`.
  virtual VersionBatchScan BatchScan(const ScanSpec& spec) const = 0;

  /// Creates a secondary index on the named attribute (used by the query
  /// evaluator for equality predicates).
  Status CreateIndex(std::string_view attribute);

  /// The underlying version store (query layer access path).
  VersionStore* store() { return &store_; }
  const VersionStore* store() const { return &store_; }

 protected:
  /// Kind-specific DML (the public wrappers validate `when` first).
  virtual Result<size_t> DoDeleteWhere(Transaction* txn,
                                       const TuplePredicate& pred,
                                       std::optional<Period> valid,
                                       const PeriodPredicate& when) = 0;
  virtual Result<size_t> DoReplaceWhere(Transaction* txn,
                                        const TuplePredicate& pred,
                                        const UpdateSpec& updates,
                                        std::optional<Period> valid,
                                        const PeriodPredicate& when) = 0;

  /// Validates arity/types and coerces values against the schema.
  Result<std::vector<Value>> CheckValues(std::vector<Value> values) const;

  /// Resolves the valid period for a kind *with* valid time: defaults to
  /// `[now, ∞)`, validates event relations get instants (coercing a nullopt
  /// default to the single chronon `now`).
  Result<Period> ResolveValidPeriod(Transaction* txn,
                                    std::optional<Period> valid) const;

  /// Rejects a user-supplied valid period for kinds *without* valid time.
  Status RejectValidPeriod(const std::optional<Period>& valid) const;

  RelationInfo info_;
  VersionStore store_;
};

/// Creates the right subclass for `info.temporal_class`.
std::unique_ptr<StoredRelation> MakeStoredRelation(
    RelationInfo info, VersionStoreOptions options = {});

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_STORED_RELATION_H_
