#ifndef TEMPORADB_TEMPORAL_STATIC_RELATION_H_
#define TEMPORADB_TEMPORAL_STATIC_RELATION_H_

#include "temporal/stored_relation.h"

namespace temporadb {

/// A conventional snapshot relation (§4.1).
///
/// "Updating the state of a database is performed using data manipulation
/// operations such as insertion, deletion or replacement, taking effect as
/// soon as it is committed.  In this process, past states of the database,
/// and those of the real world, are discarded and forgotten completely."
///
/// Implementation: tuples live in the version store with both temporal
/// periods degenerate (`Period::All()`); deletes and replaces physically
/// destroy the old data.
class StaticRelation : public StoredRelation {
 public:
  explicit StaticRelation(RelationInfo info, VersionStoreOptions options = {})
      : StoredRelation(std::move(info), options) {}

  Status Append(Transaction* txn, std::vector<Value> values,
                std::optional<Period> valid) override;

  /// No time dimension is maintained, so there is nothing to push down:
  /// always a full scan (the analyzer rejects `as of` / `when` on static
  /// relations before a spec could carry a window here).
  VersionScan Scan(const ScanSpec& spec) const override;
  VersionBatchScan BatchScan(const ScanSpec& spec) const override;

  Result<size_t> DoDeleteWhere(Transaction* txn, const TuplePredicate& pred,
                               std::optional<Period> valid,
                               const PeriodPredicate& when) override;

  Result<size_t> DoReplaceWhere(Transaction* txn, const TuplePredicate& pred,
                                const UpdateSpec& updates,
                                std::optional<Period> valid,
                                const PeriodPredicate& when) override;
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_STATIC_RELATION_H_
