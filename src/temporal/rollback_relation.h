#ifndef TEMPORADB_TEMPORAL_ROLLBACK_RELATION_H_
#define TEMPORADB_TEMPORAL_ROLLBACK_RELATION_H_

#include "temporal/stored_relation.h"

namespace temporadb {

/// A static rollback relation (§4.2): the sequence of static states the
/// database has moved through, indexed by transaction time.
///
/// "Changes to a static rollback database may only be made to the most
/// recent static state. [...] once a transaction has completed, the static
/// relations in the static rollback relation may not be altered."
///
/// Implementation: the tuple-stamped representation of Figure 4 — each
/// version carries a transaction period `[start, end)`; the current state is
/// the set of versions with `end = ∞`.  Updates never destroy data: a delete
/// *closes* the victim's period at the transaction timestamp; a replace
/// closes and appends.  Valid time is not maintained (degenerate
/// `Period::All()`), and supplying a valid clause is `NotSupported` —
/// "there is no way to record retroactive/postactive changes, nor to correct
/// errors in past tuples."
class RollbackRelation : public StoredRelation {
 public:
  explicit RollbackRelation(RelationInfo info,
                            VersionStoreOptions options = {})
      : StoredRelation(std::move(info), options) {}

  Status Append(Transaction* txn, std::vector<Value> values,
                std::optional<Period> valid) override;

  /// `asof` probes the snapshot index (stab for an instant window, range
  /// query for `as of ... through`); without it, only the current stored
  /// state is scanned.  `valid_during` is ignored — valid time is not
  /// maintained.
  VersionScan Scan(const ScanSpec& spec) const override;
  VersionBatchScan BatchScan(const ScanSpec& spec) const override;

  Result<size_t> DoDeleteWhere(Transaction* txn, const TuplePredicate& pred,
                               std::optional<Period> valid,
                               const PeriodPredicate& when) override;

  Result<size_t> DoReplaceWhere(Transaction* txn, const TuplePredicate& pred,
                                const UpdateSpec& updates,
                                std::optional<Period> valid,
                                const PeriodPredicate& when) override;
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_ROLLBACK_RELATION_H_
