#include "temporal/snapshot.h"

#include <algorithm>
#include <set>

namespace temporadb {

StaticState RollbackSlice(const VersionStore& store, Chronon t) {
  StaticState state;
  state.at = t;
  for (RowId row : store.TxnAsOf(t)) {
    Result<const BitemporalTuple*> tuple = store.Get(row);
    if (tuple.ok()) state.rows.push_back((*tuple)->values);
  }
  std::sort(state.rows.begin(), state.rows.end());
  return state;
}

StaticState ValidTimeslice(const VersionStore& store, Chronon v) {
  StaticState state;
  state.at = v;
  for (RowId row : store.ValidOverlapping(Period::At(v))) {
    Result<const BitemporalTuple*> tuple = store.Get(row);
    if (!tuple.ok()) continue;
    // Only the current stored state participates; superseded versions of a
    // temporal relation belong to past states.
    if (!(*tuple)->IsCurrentState()) continue;
    state.rows.push_back((*tuple)->values);
  }
  std::sort(state.rows.begin(), state.rows.end());
  return state;
}

HistoricalState HistoricalStateAsOf(const VersionStore& store, Chronon t) {
  HistoricalState state;
  state.at = t;
  for (RowId row : store.TxnAsOf(t)) {
    Result<const BitemporalTuple*> tuple = store.Get(row);
    if (tuple.ok()) state.rows.push_back(**tuple);
  }
  std::sort(state.rows.begin(), state.rows.end(),
            [](const BitemporalTuple& a, const BitemporalTuple& b) {
              if (a.values != b.values) return a.values < b.values;
              return a.valid.begin() < b.valid.begin();
            });
  return state;
}

std::vector<Chronon> TransactionBoundaries(const VersionStore& store) {
  std::set<Chronon> boundaries;
  store.ForEach([&](RowId, const BitemporalTuple& t) {
    if (t.txn.begin().IsFinite()) boundaries.insert(t.txn.begin());
    if (t.txn.end().IsFinite()) boundaries.insert(t.txn.end());
  });
  return std::vector<Chronon>(boundaries.begin(), boundaries.end());
}

std::vector<Chronon> ValidBoundaries(const VersionStore& store) {
  std::set<Chronon> boundaries;
  store.ForEach([&](RowId, const BitemporalTuple& t) {
    if (!t.IsCurrentState()) return;  // Slice the current knowledge only.
    if (t.valid.begin().IsFinite()) boundaries.insert(t.valid.begin());
    if (t.valid.end().IsFinite()) boundaries.insert(t.valid.end());
  });
  return std::vector<Chronon>(boundaries.begin(), boundaries.end());
}

std::vector<StaticState> RollbackStates(const VersionStore& store) {
  std::vector<StaticState> states;
  for (Chronon t : TransactionBoundaries(store)) {
    states.push_back(RollbackSlice(store, t));
  }
  return states;
}

std::vector<StaticState> HistoricalSlices(const VersionStore& store) {
  std::vector<StaticState> slices;
  for (Chronon v : ValidBoundaries(store)) {
    slices.push_back(ValidTimeslice(store, v));
  }
  return slices;
}

std::vector<HistoricalState> TemporalStates(const VersionStore& store) {
  std::vector<HistoricalState> states;
  for (Chronon t : TransactionBoundaries(store)) {
    states.push_back(HistoricalStateAsOf(store, t));
  }
  return states;
}

}  // namespace temporadb
