#include "temporal/temporal_relation.h"

namespace temporadb {

Status TemporalRelation::Append(Transaction* txn, std::vector<Value> values,
                                std::optional<Period> valid) {
  TDB_ASSIGN_OR_RETURN(values, CheckValues(std::move(values)));
  TDB_ASSIGN_OR_RETURN(Period period, ResolveValidPeriod(txn, valid));
  BitemporalTuple tuple;
  tuple.values = std::move(values);
  tuple.valid = period;
  tuple.txn = Period::From(txn->timestamp());
  TDB_ASSIGN_OR_RETURN(RowId row, store_.Append(txn, std::move(tuple)));
  (void)row;
  return Status::OK();
}

namespace {

// Snapshot-mode scans bypass every index and epoch check: the pin bounds
// the rows, and the residual predicates below reproduce the access-path
// semantics of the index arms exactly (the indexes only prune, never
// change the result).
BatchPredicates SnapshotPreds(const ScanSpec& spec) {
  BatchPredicates preds;
  if (spec.asof.has_value()) {
    const Period w = *spec.asof;
    if (w.IsInstant()) {
      preds.txn_contains = w.begin();
    } else {
      preds.txn_overlaps = w;
    }
  } else {
    preds.txn_current = true;
  }
  preds.valid_overlaps = spec.valid_during;
  return preds;
}

}  // namespace

VersionScan TemporalRelation::Scan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    return store_.ScanSnapshot(*spec.snapshot, SnapshotPreds(spec));
  }
  if (spec.asof.has_value()) {
    const Period w = *spec.asof;
    if (store_.options().time_pushdown) {
      // When the query constrains both times, the interval index is the
      // better access path: `when` windows are typically narrow, while in
      // an append-heavy history almost every version is alive at any given
      // as-of instant, so the snapshot index barely prunes.
      if (spec.valid_during.has_value() && store_.options().index_valid_time) {
        return store_.ScanValidDuring(
            *spec.valid_during,
            [w](const BitemporalTuple& t) { return t.txn.Overlaps(w); });
      }
      if (w.IsInstant()) return store_.ScanAsOf(w.begin());
      return store_.ScanTxnOverlapping(w);
    }
    return store_.ScanAll(
        [w](const BitemporalTuple& t) { return t.txn.Overlaps(w); });
  }
  if (spec.valid_during.has_value() && store_.options().time_pushdown) {
    return store_.ScanValidDuring(
        *spec.valid_during,
        [](const BitemporalTuple& t) { return t.IsCurrentState(); });
  }
  return store_.ScanCurrent();
}

VersionBatchScan TemporalRelation::BatchScan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    return store_.BatchScanSnapshot(*spec.snapshot, SnapshotPreds(spec));
  }
  if (spec.asof.has_value()) {
    const Period w = *spec.asof;
    if (store_.options().time_pushdown) {
      // Same access-path choice as the row scan: prefer the interval index
      // when both times are constrained (see Scan above).
      if (spec.valid_during.has_value() && store_.options().index_valid_time) {
        BatchPredicates preds;
        preds.txn_overlaps = w;
        return store_.BatchScanValidDuring(*spec.valid_during,
                                           std::move(preds));
      }
      if (w.IsInstant()) return store_.BatchScanAsOf(w.begin());
      return store_.BatchScanTxnOverlapping(w);
    }
    BatchPredicates preds;
    preds.txn_overlaps = w;
    return store_.BatchScanAll(std::move(preds));
  }
  if (spec.valid_during.has_value() && store_.options().time_pushdown) {
    BatchPredicates preds;
    preds.txn_current = true;
    return store_.BatchScanValidDuring(*spec.valid_during, std::move(preds));
  }
  return store_.BatchScanCurrent();
}

Result<size_t> TemporalRelation::DoDeleteWhere(Transaction* txn,
                                               const TuplePredicate& pred,
                                               std::optional<Period> valid,
                                               const PeriodPredicate& when) {
  TDB_ASSIGN_OR_RETURN(Period del, ResolveValidPeriod(txn, valid));
  const Chronon now = txn->timestamp();
  // Only versions in the *current* historical state are logically visible
  // to DML; closed versions belong to past states and are immutable.
  std::vector<RowId> victims;
  for (RowId row : store_.CurrentRows()) {
    Result<const BitemporalTuple*> t = store_.Get(row);
    if (!t.ok()) return t.status();
    if (when != nullptr && !when((*t)->valid)) continue;
    if ((*t)->valid.Overlaps(del) && pred((*t)->values)) {
      victims.push_back(row);
    }
  }
  for (RowId row : victims) {
    TDB_ASSIGN_OR_RETURN(const BitemporalTuple* t, store_.Get(row));
    BitemporalTuple old = *t;
    // Supersede the old version: its transaction period ends now.
    TDB_RETURN_IF_ERROR(store_.CloseTxn(txn, row, now));
    // Append remnants of validity outside the deleted period, entering the
    // store now.
    Period left(old.valid.begin(), MinChronon(old.valid.end(), del.begin()));
    Period right(MaxChronon(old.valid.begin(), del.end()), old.valid.end());
    for (Period remnant : {left, right}) {
      if (remnant.IsEmpty()) continue;
      BitemporalTuple r = old;
      r.valid = remnant;
      r.txn = Period::From(now);
      TDB_ASSIGN_OR_RETURN(RowId new_row, store_.Append(txn, std::move(r)));
      (void)new_row;
    }
  }
  return victims.size();
}

Result<size_t> TemporalRelation::DoReplaceWhere(Transaction* txn,
                                                const TuplePredicate& pred,
                                                const UpdateSpec& updates,
                                                std::optional<Period> valid,
                                                const PeriodPredicate& when) {
  TDB_ASSIGN_OR_RETURN(Period rep, ResolveValidPeriod(txn, valid));
  const Chronon now = txn->timestamp();
  std::vector<RowId> victims;
  for (RowId row : store_.CurrentRows()) {
    Result<const BitemporalTuple*> t = store_.Get(row);
    if (!t.ok()) return t.status();
    if (when != nullptr && !when((*t)->valid)) continue;
    if ((*t)->valid.Overlaps(rep) && pred((*t)->values)) {
      victims.push_back(row);
    }
  }
  for (RowId row : victims) {
    TDB_ASSIGN_OR_RETURN(const BitemporalTuple* t, store_.Get(row));
    BitemporalTuple old = *t;
    TDB_RETURN_IF_ERROR(store_.CloseTxn(txn, row, now));
    // Remnants keep the old values where the replacement does not reach.
    Period left(old.valid.begin(), MinChronon(old.valid.end(), rep.begin()));
    Period right(MaxChronon(old.valid.begin(), rep.end()), old.valid.end());
    for (Period remnant : {left, right}) {
      if (remnant.IsEmpty()) continue;
      BitemporalTuple r = old;
      r.valid = remnant;
      r.txn = Period::From(now);
      TDB_ASSIGN_OR_RETURN(RowId new_row, store_.Append(txn, std::move(r)));
      (void)new_row;
    }
    // The updated fact holds over the intersection of its old validity and
    // the replacement period.
    BitemporalTuple updated = old;
    TDB_ASSIGN_OR_RETURN(updated.values,
                         ApplyUpdates(updates, updated.values));
    TDB_ASSIGN_OR_RETURN(updated.values,
                         CheckValues(std::move(updated.values)));
    updated.valid = old.valid.Intersect(rep);
    updated.txn = Period::From(now);
    TDB_ASSIGN_OR_RETURN(RowId new_row, store_.Append(txn, std::move(updated)));
    (void)new_row;
  }
  return victims.size();
}

}  // namespace temporadb
