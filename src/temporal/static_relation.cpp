#include "temporal/static_relation.h"

namespace temporadb {

Status StaticRelation::Append(Transaction* txn, std::vector<Value> values,
                              std::optional<Period> valid) {
  TDB_RETURN_IF_ERROR(RejectValidPeriod(valid));
  TDB_ASSIGN_OR_RETURN(values, CheckValues(std::move(values)));
  BitemporalTuple tuple;
  tuple.values = std::move(values);
  // Static relations have no temporal semantics: both periods degenerate.
  tuple.valid = Period::All();
  tuple.txn = Period::All();
  TDB_ASSIGN_OR_RETURN(RowId row, store_.Append(txn, std::move(tuple)));
  (void)row;
  return Status::OK();
}

VersionScan StaticRelation::Scan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    // No temporal dimensions: the pin's row watermark alone bounds the view
    // (in-place updates are corrections and cannot run under a snapshot).
    return store_.ScanSnapshot(*spec.snapshot, BatchPredicates{});
  }
  (void)spec;  // Both periods are degenerate; no window can prune anything.
  return store_.ScanAll();
}

VersionBatchScan StaticRelation::BatchScan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    return store_.BatchScanSnapshot(*spec.snapshot, BatchPredicates{});
  }
  (void)spec;  // Both periods are degenerate; no window can prune anything.
  return store_.BatchScanAll();
}

Result<size_t> StaticRelation::DoDeleteWhere(Transaction* txn,
                                             const TuplePredicate& pred,
                                             std::optional<Period> valid,
                                             const PeriodPredicate& when) {
  (void)when;  // Rejected by the base wrapper (no valid time).
  TDB_RETURN_IF_ERROR(RejectValidPeriod(valid));
  std::vector<RowId> victims;
  store_.ForEach([&](RowId row, const BitemporalTuple& t) {
    if (pred(t.values)) victims.push_back(row);
  });
  for (RowId row : victims) {
    TDB_RETURN_IF_ERROR(store_.PhysicalDelete(txn, row));
  }
  return victims.size();
}

Result<size_t> StaticRelation::DoReplaceWhere(Transaction* txn,
                                              const TuplePredicate& pred,
                                              const UpdateSpec& updates,
                                              std::optional<Period> valid,
                                              const PeriodPredicate& when) {
  (void)when;  // Rejected by the base wrapper (no valid time).
  TDB_RETURN_IF_ERROR(RejectValidPeriod(valid));
  std::vector<RowId> victims;
  store_.ForEach([&](RowId row, const BitemporalTuple& t) {
    if (pred(t.values)) victims.push_back(row);
  });
  for (RowId row : victims) {
    TDB_ASSIGN_OR_RETURN(const BitemporalTuple* t, store_.Get(row));
    BitemporalTuple updated = *t;
    TDB_ASSIGN_OR_RETURN(updated.values,
                         ApplyUpdates(updates, updated.values));
    TDB_ASSIGN_OR_RETURN(updated.values,
                         CheckValues(std::move(updated.values)));
    TDB_RETURN_IF_ERROR(store_.PhysicalUpdate(txn, row, std::move(updated)));
  }
  return victims.size();
}

}  // namespace temporadb
