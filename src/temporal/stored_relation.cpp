#include "temporal/stored_relation.h"

#include "common/strings.h"
#include "temporal/historical_relation.h"
#include "temporal/rollback_relation.h"
#include "temporal/static_relation.h"
#include "temporal/temporal_relation.h"

namespace temporadb {

UpdateAction ConstUpdate(size_t index, Value v) {
  return UpdateAction{
      index,
      [v = std::move(v)](const std::vector<Value>&) -> Result<Value> {
        return v;
      }};
}

Result<std::vector<Value>> ApplyUpdates(const UpdateSpec& updates,
                                        const std::vector<Value>& values) {
  std::vector<Value> out = values;
  for (const UpdateAction& action : updates) {
    if (action.index >= out.size()) {
      return Status::InvalidArgument("update index out of range");
    }
    TDB_ASSIGN_OR_RETURN(out[action.index], action.compute(values));
  }
  return out;
}

Result<size_t> StoredRelation::CorrectErase(Transaction*,
                                            const TuplePredicate&) {
  return Status::NotSupported(StringPrintf(
      "physical corrections are only meaningful for historical relations; "
      "'%s' is %s",
      info_.name.c_str(),
      std::string(TemporalClassName(info_.temporal_class)).c_str()));
}

Result<size_t> StoredRelation::DeleteWhere(Transaction* txn,
                                           const TuplePredicate& pred,
                                           std::optional<Period> valid,
                                           const PeriodPredicate& when) {
  if (when != nullptr && !SupportsValidTime(info_.temporal_class)) {
    return Status::NotSupported(StringPrintf(
        "relation '%s' is %s and does not maintain valid time; a 'when' "
        "clause is not supported",
        info_.name.c_str(),
        std::string(TemporalClassName(info_.temporal_class)).c_str()));
  }
  return DoDeleteWhere(txn, pred, std::move(valid), when);
}

Result<size_t> StoredRelation::ReplaceWhere(Transaction* txn,
                                            const TuplePredicate& pred,
                                            const UpdateSpec& updates,
                                            std::optional<Period> valid,
                                            const PeriodPredicate& when) {
  if (when != nullptr && !SupportsValidTime(info_.temporal_class)) {
    return Status::NotSupported(StringPrintf(
        "relation '%s' is %s and does not maintain valid time; a 'when' "
        "clause is not supported",
        info_.name.c_str(),
        std::string(TemporalClassName(info_.temporal_class)).c_str()));
  }
  return DoReplaceWhere(txn, pred, updates, std::move(valid), when);
}

Status StoredRelation::CreateIndex(std::string_view attribute) {
  std::optional<size_t> idx = info_.schema.IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::InvalidArgument(StringPrintf(
        "relation '%s' has no attribute '%s'", info_.name.c_str(),
        std::string(attribute).c_str()));
  }
  return store_.CreateAttributeIndex(*idx);
}

Result<std::vector<Value>> StoredRelation::CheckValues(
    std::vector<Value> values) const {
  const Schema& schema = info_.schema;
  if (values.size() != schema.size()) {
    return Status::InvalidArgument(StringPrintf(
        "relation '%s' expects %zu attributes, got %zu", info_.name.c_str(),
        schema.size(), values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    TDB_ASSIGN_OR_RETURN(values[i], schema.at(i).type.Coerce(values[i]));
  }
  return values;
}

Result<Period> StoredRelation::ResolveValidPeriod(
    Transaction* txn, std::optional<Period> valid) const {
  if (!valid.has_value()) {
    // The fact holds "from now on" (interval model) or "happens now"
    // (event model), where "now" is the transaction timestamp.
    if (info_.data_model == TemporalDataModel::kEvent) {
      return Period::At(txn->timestamp());
    }
    return Period::From(txn->timestamp());
  }
  if (valid->IsEmpty()) {
    return Status::InvalidArgument("valid period is empty");
  }
  if (info_.data_model == TemporalDataModel::kEvent && !valid->IsInstant()) {
    return Status::InvalidArgument(StringPrintf(
        "'%s' is an event relation; its valid time is a single chronon "
        "(use 'valid at'), not an interval",
        info_.name.c_str()));
  }
  return *valid;
}

Status StoredRelation::RejectValidPeriod(
    const std::optional<Period>& valid) const {
  if (valid.has_value()) {
    return Status::NotSupported(StringPrintf(
        "relation '%s' is %s and does not maintain valid time; retroactive "
        "or postactive changes (a 'valid' clause) are not supported",
        info_.name.c_str(),
        std::string(TemporalClassName(info_.temporal_class)).c_str()));
  }
  return Status::OK();
}

std::unique_ptr<StoredRelation> MakeStoredRelation(
    RelationInfo info, VersionStoreOptions options) {
  switch (info.temporal_class) {
    case TemporalClass::kStatic:
      return std::make_unique<StaticRelation>(std::move(info), options);
    case TemporalClass::kRollback:
      return std::make_unique<RollbackRelation>(std::move(info), options);
    case TemporalClass::kHistorical:
      return std::make_unique<HistoricalRelation>(std::move(info), options);
    case TemporalClass::kTemporal:
      return std::make_unique<TemporalRelation>(std::move(info), options);
  }
  return nullptr;
}

}  // namespace temporadb
