#ifndef TEMPORADB_TEMPORAL_SNAPSHOT_H_
#define TEMPORADB_TEMPORAL_SNAPSHOT_H_

#include <vector>

#include "common/period.h"
#include "temporal/version_store.h"

namespace temporadb {

/// Materializers for the paper's "cube" pictures: a stored relation viewed
/// as a sequence of states along one of its time axes (Figures 3, 5, 7).
/// These are diagnostic/bench utilities; queries use the rel layer.

/// A static state: bare tuples, no temporal columns.
struct StaticState {
  Chronon at;  ///< The chronon this slice was taken at.
  std::vector<std::vector<Value>> rows;
};

/// An historical state: tuples with their valid periods.
struct HistoricalState {
  Chronon at;  ///< Transaction chronon the state was current at.
  std::vector<BitemporalTuple> rows;  ///< txn periods are as stored.
};

/// The static state of a rollback/temporal relation as of transaction time
/// `t` (the paper's *rollback* operation, projected to explicit values).
StaticState RollbackSlice(const VersionStore& store, Chronon t);

/// The set of tuples valid at chronon `v` in the current state (the
/// *timeslice* of an historical relation).
StaticState ValidTimeslice(const VersionStore& store, Chronon v);

/// The historical state of a temporal relation as of transaction time `t`:
/// every version whose transaction period contains `t`, with valid periods.
HistoricalState HistoricalStateAsOf(const VersionStore& store, Chronon t);

/// The distinct transaction chronons at which the stored state changed
/// (starts and finite ends of transaction periods), ascending.
std::vector<Chronon> TransactionBoundaries(const VersionStore& store);

/// The distinct valid chronons at which the modeled reality changed
/// (starts and finite ends of valid periods), ascending.
std::vector<Chronon> ValidBoundaries(const VersionStore& store);

/// The full cube of a rollback relation: one static state per transaction
/// boundary (Figure 3).
std::vector<StaticState> RollbackStates(const VersionStore& store);

/// The full cube of an historical relation: one static slice per valid
/// boundary (Figure 5).
std::vector<StaticState> HistoricalSlices(const VersionStore& store);

/// The 4-D structure of a temporal relation: one historical state per
/// transaction boundary (Figure 7).
std::vector<HistoricalState> TemporalStates(const VersionStore& store);

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_SNAPSHOT_H_
