#ifndef TEMPORADB_TEMPORAL_HISTORICAL_RELATION_H_
#define TEMPORADB_TEMPORAL_HISTORICAL_RELATION_H_

#include "temporal/stored_relation.h"

namespace temporadb {

/// An historical relation (§4.3): the history of reality *as it is best
/// known now*, indexed by valid time.
///
/// "As errors are discovered, they are corrected by modifying the database.
/// Previous states are not retained [...] There is no record kept of the
/// errors that have been corrected."
///
/// Implementation: the tuple-stamped representation of Figure 6 — each
/// version carries a valid period `[from, to)`; transaction time is not
/// maintained (degenerate `Period::All()`).  DML is *arbitrary
/// modification*:
///  - `Append` records a fact over any valid period, past or future
///    (retroactive and postactive changes are just periods that don't start
///    "now");
///  - `DeleteWhere` removes validity over a period, physically trimming —
///    and, when the deleted period falls strictly inside a fact's validity,
///    *splitting* — the stored versions;
///  - `CorrectErase` physically removes versions, leaving no trace.
class HistoricalRelation : public StoredRelation {
 public:
  explicit HistoricalRelation(RelationInfo info,
                              VersionStoreOptions options = {})
      : StoredRelation(std::move(info), options) {}

  Status Append(Transaction* txn, std::vector<Value> values,
                std::optional<Period> valid) override;

  /// `valid_during` probes the interval index over valid periods; `asof`
  /// is ignored — transaction time is not maintained (a rollback over a
  /// historical relation is rejected by the analyzer).
  VersionScan Scan(const ScanSpec& spec) const override;
  VersionBatchScan BatchScan(const ScanSpec& spec) const override;

  Result<size_t> DoDeleteWhere(Transaction* txn, const TuplePredicate& pred,
                               std::optional<Period> valid,
                               const PeriodPredicate& when) override;

  Result<size_t> DoReplaceWhere(Transaction* txn, const TuplePredicate& pred,
                                const UpdateSpec& updates,
                                std::optional<Period> valid,
                                const PeriodPredicate& when) override;

  Result<size_t> CorrectErase(Transaction* txn,
                              const TuplePredicate& pred) override;
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_HISTORICAL_RELATION_H_
