#ifndef TEMPORADB_TEMPORAL_VERSION_STORE_H_
#define TEMPORADB_TEMPORAL_VERSION_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/inline_function.h"
#include "common/result.h"
#include "index/btree.h"
#include "index/interval_index.h"
#include "index/snapshot_index.h"
#include "temporal/bitemporal_tuple.h"
#include "temporal/mvcc.h"
#include "temporal/partition.h"
#include "temporal/stable_storage.h"
#include "txn/transaction.h"

namespace temporadb {

namespace exec {
class ThreadPool;
}  // namespace exec

using RowId = uint64_t;

class VersionStore;

/// A predicate over a stored version, applied while a scan pulls.
///
/// Small-buffer-optimized: the common window predicates (a captured
/// `Period` or `Chronon`) live inline, so the per-version call in the hot
/// scan loop is one indirect call with the captured state on the same
/// cache line — no heap hop like `std::function`.  Filters must be
/// const-invocable and, because a parallel scan evaluates one filter from
/// many workers at once, must not touch shared mutable state.
using VersionFilter = InlineFunction<bool(const BitemporalTuple&), 48>;

/// Structured residual predicates of a batch scan, evaluated with the
/// branch-free kernels (rel/kernels.h) over the store's contiguous chronon
/// columns instead of per-tuple `Period` calls.  Each field mirrors one of
/// the `VersionFilter` lambdas the row-at-a-time scan entry points compose;
/// the batch entry points merge their own window into this struct when the
/// backing index is disabled, exactly like the row path degrades to a
/// filtered sweep.  Snapshot scans (both row and batch) use this struct for
/// *all* their predicates — a snapshot can never use a `VersionFilter` that
/// touches `BitemporalTuple::txn`, so the structured form is mandatory
/// there.
struct BatchPredicates {
  /// `t.valid.Overlaps(w)` (timeslice / `when` windows).
  std::optional<Period> valid_overlaps;
  /// `t.txn.Overlaps(w)` (`as of ... through` windows).
  std::optional<Period> txn_overlaps;
  /// `t.txn.Contains(c)` (rollback to an instant).
  std::optional<Chronon> txn_contains;
  /// `t.IsCurrentState()`.
  bool txn_current = false;
};

/// A pull-based scan over the live versions of a `VersionStore`, always
/// yielding in ascending row order — whether the candidates came from an
/// index or from a sequential sweep, the caller observes the same sequence
/// (the executor's bit-identical-results guarantee rests on this).
///
/// Obtained from the `Scan*` entry points on `VersionStore` (or from a
/// relation's `Scan`); pulls one version at a time, so callers pay for the
/// tuples they consume, not for a copy of the store.
///
/// ### Lifetime and concurrency contract
///
/// A scan is a *snapshot-stable* reader and comes in two modes:
///
/// **Writer-thread scans** (the default, everything below except the
/// snapshot constructor) capture the store's mutation epoch and a row
/// watermark (the version count) at open and only ever touch slots below
/// that watermark.  Any index probe backing the scan ran at open, on the
/// opening (coordinator) thread — workers of a parallel scan never read
/// the shared index structures.  It is therefore safe to run the scan's
/// probe phase on many threads concurrently, and safe for *other* scans to
/// read the same store concurrently.  What is NOT allowed is advancing
/// such a scan after the store was mutated: slot storage is stable, but
/// index candidates, the watermark, and uncommitted in-place closes go
/// stale.  `Next` enforces this with an always-on runtime check
/// (`TDB_INVARIANT_CHECK`, never a compiled-out assert): the store's
/// mutation epoch must still match the one captured at open, or the
/// process aborts rather than silently yielding stale rows — exactly like
/// iterator invalidation on a `std::vector`, except it cannot go
/// undetected in release builds.
///
/// **Snapshot scans** (the `SnapshotPin` constructor) are built for
/// mutation under them: they run on reader threads concurrently with the
/// writer, bound by the pin's committed-row watermark and commit sequence
/// instead of the mutation epoch (see mvcc.h).  They never touch the index
/// structures (those mutate with the writer), always run sequentially on
/// the calling thread (the thread pool belongs to the writer), and read
/// transaction-end values through the close-sequence patch so post-pin
/// closes read back as ∞.  Tuples yielded by a snapshot scan have stable
/// `values` and `valid`, but their `txn` member may be mid-close — take
/// transaction periods from the batch scan's patched columns instead.
class VersionScan {
 public:
  /// Sequential sweep of every live version, optionally filtered.
  /// `prune_hint` is the structured twin of the time window `filter` checks
  /// (empty for an unwindowed sweep): it never changes which rows match —
  /// the filter still decides — but lets the scan skip sealed partitions
  /// whose synopsis proves the window cannot intersect them.
  explicit VersionScan(const VersionStore* store, VersionFilter filter = {},
                       BatchPredicates prune_hint = {});

  /// Scan over index-selected candidates; `rows` is sorted (and deduped)
  /// so the yield order matches the equivalent sequential sweep.
  VersionScan(const VersionStore* store, std::vector<RowId> rows,
              VersionFilter filter = {});

  /// Snapshot-isolated sweep bound to `pin` (see the contract above):
  /// sequential over `[0, pin.rows)`, predicates evaluated against the
  /// pin-patched transaction periods, callable from any thread while the
  /// writer commits.
  VersionScan(const VersionStore* store, SnapshotPin pin,
              BatchPredicates preds);

  /// The next live version passing the filter, or nullptr at end.  The
  /// pointer stays valid until the store is next mutated.  `row_out`
  /// (optional) receives the version's row id.
  ///
  /// When the store enables `parallel_scan`, the first pull materializes
  /// all matches with a morsel-parallel probe (bit-identical sequence, see
  /// `exec::ParallelScan`) and later pulls stream from that buffer.
  const BitemporalTuple* Next(RowId* row_out = nullptr);

 private:
  bool ShouldRunParallel() const;
  void MaterializeParallel();
  const BitemporalTuple* NextSnapshot(RowId* row_out);

  const VersionStore* store_;
  bool sequential_;
  std::vector<RowId> rows_;  // Index mode only.
  // Sequential/snapshot mode: the surviving row ranges after partition
  // pruning (the single range [0, limit_) when nothing prunes).
  std::vector<RowRange> ranges_;
  size_t range_idx_ = 0;  // Current range (streaming sequential/snapshot).
  size_t pos_ = 0;  // Next row id (sequential) / index into rows_ or buffer_.
  VersionFilter filter_;
  size_t limit_;     // Watermark: slots at or above it are invisible.
  uint64_t epoch_;   // Store mutation epoch at open (checked at every Next).
  bool snapshot_ = false;  // Pin-bound mode: epoch check off, preds_ on.
  SnapshotPin pin_;
  BatchPredicates preds_;  // Snapshot mode only.
  bool decided_ = false;   // Parallel-vs-pull decision made at first Next.
  bool buffered_ = false;  // Matches pre-materialized into buffer_.
  std::vector<std::pair<RowId, const BitemporalTuple*>> buffer_;
};

/// A fixed-size slice of scan results in columnar form: the unit of flow of
/// the vectorized executor's storage boundary.
///
/// `tuples` are borrowed pointers into the store (same lifetime rules as
/// `VersionScan::Next`); the chronon columns are *copies* of the survivors'
/// temporal dimensions, contiguous so downstream operators can keep running
/// branch-free kernels without touching the tuples at all.  Entries are in
/// ascending row order — a batch scan yields exactly the sequence the
/// equivalent `VersionScan` pull loop would, sliced into batches.
struct VersionBatch {
  std::vector<RowId> rows;
  std::vector<const BitemporalTuple*> tuples;
  std::vector<int64_t> valid_from;
  std::vector<int64_t> valid_to;
  std::vector<int64_t> tt_start;
  std::vector<int64_t> tt_end;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void Clear() {
    rows.clear();
    tuples.clear();
    valid_from.clear();
    valid_to.clear();
    tt_start.clear();
    tt_end.clear();
  }
};

/// The batch-producing counterpart of `VersionScan`: same access paths,
/// same snapshot/epoch contract, same ascending row order — but candidates
/// are probed a batch at a time with selection-vector kernels over the
/// store's chronon columns, and survivors are materialized directly into
/// `VersionBatch`es of at most `batch_rows` rows.
///
/// When the store enables `parallel_scan` and the candidate domain reaches
/// `parallel_min_rows`, the first pull materializes every batch with a
/// morsel-parallel probe: one morsel per batch-sized range, merged in morsel
/// order (bit-identical sequence AND identical batch boundaries for every
/// thread count, because morsel geometry is aligned to `batch_rows`).
class VersionBatchScan {
 public:
  /// Sequential sweep over `[0, version_count)`.
  VersionBatchScan(const VersionStore* store, BatchPredicates preds);

  /// Scan over index-selected candidates; sorted and deduped like
  /// `VersionScan` so the yield order matches a sequential sweep.
  VersionBatchScan(const VersionStore* store, std::vector<RowId> rows,
                   BatchPredicates preds);

  /// Snapshot-isolated batch sweep bound to `pin`: sequential over
  /// `[0, pin.rows)`, kernels run over pin-patched transaction-end values,
  /// callable from any thread while the writer commits (see the
  /// VersionScan contract).  The batch's `tt_end` column carries the
  /// *effective* (patched) values — a row closed after the pin reports ∞,
  /// exactly what the snapshot semantics promise.
  VersionBatchScan(const VersionStore* store, SnapshotPin pin,
                   BatchPredicates preds);

  /// Fills `out` with the next non-empty batch of survivors; false at end.
  /// `out` is overwritten (its buffers are reused across pulls).
  bool Next(VersionBatch* out);

 private:
  bool ShouldRunParallel() const;
  void MaterializeParallel();
  /// Probes candidate positions `[begin, end)` of the domain, appending the
  /// survivors to `out`.  Pure read; safe from many threads at once.
  void ProbeRange(size_t begin, size_t end, VersionBatch* out) const;
  /// Snapshot-mode twin: reads `tt_end` through the close-sequence patch
  /// into a scratch column and runs the kernel chain range-relative, so no
  /// plain load ever races the writer's in-place closes.
  void ProbeRangeSnapshot(size_t begin, size_t end, VersionBatch* out) const;

  const VersionStore* store_;
  bool sequential_;
  std::vector<RowId> rows_;  // Index mode only.
  BatchPredicates preds_;
  size_t limit_;    // Watermark: slots at or above it are invisible.
  uint64_t epoch_;  // Store mutation epoch at open (checked at every Next).
  bool snapshot_ = false;  // Pin-bound mode: epoch check off, patched reads.
  SnapshotPin pin_;
  size_t batch_rows_;
  // Sequential/snapshot mode: surviving ranges after partition pruning and
  // their batch_rows-aligned chunk grid.  One chunk = one batch = one
  // morsel, so pruned partitions never form a batch or a morsel and the
  // geometry is identical between streaming and parallel materialization.
  std::vector<RowRange> ranges_;
  std::vector<RowRange> chunks_;
  size_t chunk_idx_ = 0;   // Next chunk (streaming sequential/snapshot).
  size_t pos_ = 0;         // Next domain position (streaming index mode).
  bool decided_ = false;   // Parallel-vs-stream decision made at first Next.
  bool buffered_ = false;  // Batches pre-materialized into batches_.
  std::vector<VersionBatch> batches_;
  size_t batch_pos_ = 0;
};

/// A low-level mutation on a version store, as observed by the redo log.
struct VersionOp {
  enum class Kind : uint32_t {
    kAppend = 1,         ///< A new version entered the store.
    kCloseTxn = 2,       ///< A current version's transaction period closed.
    kPhysicalDelete = 3, ///< A version was physically removed (correction).
    kPhysicalUpdate = 4, ///< A version was overwritten in place (correction).
  };
  Kind kind;
  RowId row = 0;
  BitemporalTuple tuple;       // kAppend / kPhysicalUpdate payload.
  Chronon tt_end;              // kCloseTxn payload.
};

/// Index configuration, exposed so the ablation benches can toggle access
/// paths.
struct VersionStoreOptions {
  bool index_valid_time = true;  ///< Interval index over valid periods.
  bool index_txn_time = true;    ///< Snapshot index over transaction periods.
  /// Allow the query layer to push `as of` / `when` time predicates down
  /// into the index-aware scan entry points.  Off: every relation scan
  /// degrades to a full scan plus filter (the ablation baseline, and the
  /// pre-executor behavior).
  bool time_pushdown = true;
  /// Morsel-parallel scans: when set (and `exec_pool` is provided), a scan
  /// whose candidate domain has at least `parallel_min_rows` rows runs its
  /// filter + residual predicates on the pool's workers and merges matches
  /// back in ascending row order (bit-identical to the sequential scan).
  bool parallel_scan = false;
  /// The worker pool for parallel scans; non-owning, must outlive every
  /// store built with these options.  Null disables parallelism.
  exec::ThreadPool* exec_pool = nullptr;
  /// Scans over fewer candidate rows than this stay sequential — morsel
  /// scheduling costs more than it buys on small domains (and the dynamic
  /// probe side of a when-join is usually such a small domain).
  size_t parallel_min_rows = 4096;
  /// Vectorized execution: relation scans produce columnar batches whose
  /// temporal predicates run as branch-free kernels over the store's
  /// contiguous chronon columns.  Off: the retained row-at-a-time path
  /// (the differential-test baseline and the ablation comparison arm).
  bool batch_exec = true;
  /// Rows per batch on the batch path (also the morsel size of a parallel
  /// batch scan, keeping batch boundaries thread-count-invariant).
  size_t batch_rows = 1024;
  /// Shared MVCC coordination state (one per Database); non-owning, must
  /// outlive the store.  Null disables snapshot support: the store still
  /// works single-threaded, closes are stamped sequence 0, and
  /// `BeginCorrection` gating is skipped.
  MvccState* mvcc = nullptr;
  /// Transaction-time epoch partitioning: versions append into an open hot
  /// partition, and once `partition_rows` of them are stable (committed,
  /// when MVCC is on — a sealed partition must never lose rows to an
  /// abort-time unappend) the prefix is sealed into an immutable cold
  /// partition carrying a `PartitionSynopsis`.  0 disables partitioning —
  /// one unbounded hot partition, the differential-test baseline.
  size_t partition_rows = 4096;
  /// Consult sealed-partition synopses on every predicated sequential or
  /// snapshot scan and skip partitions whose time bounds cannot intersect
  /// the pushed-down window (the ablation toggle; sealing and synopsis
  /// maintenance continue regardless so the toggle is flippable per query).
  bool partition_pruning = true;
  /// Pruning observability sink (partition.h); non-owning, may be shared
  /// across stores, null = off.  Counters are atomic — snapshot readers on
  /// other threads report through the same instance.
  ScanStats* scan_stats = nullptr;
};

/// The physical container of tuple versions for one stored relation.
///
/// Versions are addressed by dense `RowId`s in append order; physically
/// deleted versions leave a tombstone so ids stay stable (compaction is a
/// checkpoint-time concern).  All four relation kinds sit on this store and
/// differ only in which mutations they are *allowed* to perform — the store
/// itself is policy-free.
///
/// Every mutator takes the active `Transaction` and registers a compensating
/// undo action, so statement failures mid-transaction roll back cleanly; it
/// also notifies the `observer` (the facade's redo buffer) for write-ahead
/// logging.
///
/// Threading contract: externally synchronized, single writer.  Mutators
/// must not race with each other; readers come in two safe flavors: the
/// writer's own morsel-parallel scans (read-only workers behind the
/// mutation-epoch runtime check) and snapshot-isolated reader threads
/// bound to a `SnapshotPin` (watermark + commit-sequence visibility,
/// stable slab/column storage — see mvcc.h and DESIGN.md §13).  In-place
/// corrections and compaction are fenced off from snapshot readers by
/// `MvccState::BeginCorrection`.  See DESIGN.md §11.1.
class VersionStore {
 public:
  explicit VersionStore(VersionStoreOptions options = {});

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Redo observer; invoked after each successful mutation.
  void set_observer(std::function<void(const VersionOp&)> observer) {
    observer_ = std::move(observer);
  }

  /// Appends a version; returns its row id.
  Result<RowId> Append(Transaction* txn, BitemporalTuple tuple);

  /// Closes the transaction period of a current version at `tt_end`.
  Status CloseTxn(Transaction* txn, RowId row, Chronon tt_end);

  /// Physically removes a version (legal only for kinds without transaction
  /// time; the relation layer enforces that).
  Status PhysicalDelete(Transaction* txn, RowId row);

  /// Overwrites a version in place (historical corrections).
  Status PhysicalUpdate(Transaction* txn, RowId row, BitemporalTuple tuple);

  /// Reads a live version; NotFound for tombstones / out of range.
  Result<const BitemporalTuple*> Get(RowId row) const;

  /// Iterates live versions in row order.
  void ForEach(const std::function<void(RowId, const BitemporalTuple&)>& fn) const;

  /// Rows whose transaction period contains `t` (the rollback access path);
  /// falls back to a scan when the snapshot index is disabled.
  std::vector<RowId> TxnAsOf(Chronon t) const;

  /// Rows in the current stored state (transaction end = ∞).
  std::vector<RowId> CurrentRows() const;

  /// Rows whose valid period overlaps `q`; falls back to a scan when the
  /// interval index is disabled.
  std::vector<RowId> ValidOverlapping(Period q) const;

  // --- Index-aware scan entry points ---------------------------------------
  //
  // Pull-based counterparts of the copy-out accessors above: each resolves
  // the best access path for its time predicate (snapshot index for
  // transaction time, interval index for valid time, sequential sweep when
  // the index is disabled) and yields matching live versions in row order.
  // `extra` is a residual filter applied while pulling, letting callers
  // compose predicates (e.g. valid-window scan + current-state check)
  // without a second pass.

  /// Every live version.
  VersionScan ScanAll(VersionFilter extra = {}) const;

  /// Versions in the current stored state (transaction end = ∞).
  VersionScan ScanCurrent(VersionFilter extra = {}) const;

  /// Versions whose transaction period contains `t` (rollback to an
  /// instant); backed by the snapshot index.
  VersionScan ScanAsOf(Chronon t, VersionFilter extra = {}) const;

  /// Versions whose transaction period overlaps `q` (`as of ... through`
  /// windows); backed by the snapshot index.
  VersionScan ScanTxnOverlapping(Period q, VersionFilter extra = {}) const;

  /// Versions whose valid period overlaps `q` (timeslices and `when`
  /// windows); backed by the interval index.
  VersionScan ScanValidDuring(Period q, VersionFilter extra = {}) const;

  // --- Batch scan entry points ---------------------------------------------
  //
  // Columnar counterparts of the scan entry points above, one for one: each
  // resolves the *same* access path as its row sibling (index probe when the
  // index is on, kernel-filtered sweep when it is off) and yields the same
  // version sequence, sliced into `VersionBatch`es.  `residual` carries the
  // structured predicates the row path would pass as an `extra` filter.

  VersionBatchScan BatchScanAll(BatchPredicates residual = {}) const;
  VersionBatchScan BatchScanCurrent(BatchPredicates residual = {}) const;
  VersionBatchScan BatchScanAsOf(Chronon t,
                                 BatchPredicates residual = {}) const;
  VersionBatchScan BatchScanTxnOverlapping(Period q,
                                           BatchPredicates residual = {}) const;
  VersionBatchScan BatchScanValidDuring(Period q,
                                        BatchPredicates residual = {}) const;

  // --- Snapshot scan entry points ------------------------------------------
  //
  // Reader-thread entry points for snapshot-isolated reads (mvcc.h): bound
  // by the pin's committed-row watermark and commit sequence, never by the
  // mutation epoch, and never touching the (writer-mutable) index
  // structures.  All predicates arrive structured — the relation layer
  // translates its as-of / when windows into BatchPredicates, and the
  // kernels evaluate them over pin-patched transaction ends.

  /// Row-at-a-time snapshot sweep.  Yielded tuples have stable `values` and
  /// `valid`; do not read their `txn` member (the writer may be closing it
  /// in place) — consume transaction periods via the batch twin instead.
  VersionScan ScanSnapshot(SnapshotPin pin, BatchPredicates preds) const;

  /// Columnar snapshot sweep; the batch's `tt_end` column carries the
  /// pin-effective values.
  VersionBatchScan BatchScanSnapshot(SnapshotPin pin,
                                     BatchPredicates preds) const;

  // --- Snapshot publication and pinned access ------------------------------

  /// Publishes every currently-stored row as committed: snapshot pins taken
  /// after this call include them.  Called by the owning Database at
  /// group-commit completion (and at the end of recovery), between the
  /// MvccState publish_word flips; release-ordered so a pin that observes
  /// the new watermark also observes every published row's bytes.
  ///
  /// Publication is also the MVCC-mode seal point: rows that just became
  /// committed can never be unappended, so full partitions of them seal
  /// here (never at append, where an abort could claw rows back out of a
  /// sealed partition under concurrent readers).
  void PublishCommittedRows() {
    committed_rows_.store(versions_.size(), std::memory_order_release);
    MaybeSealHot();
  }

  /// The committed-row watermark as last published.
  uint64_t committed_rows() const {
    return committed_rows_.load(std::memory_order_acquire);
  }

  /// Snapshot-reader tuple access: no liveness or bounds checks (the
  /// caller's pin guarantees `row < pin.rows <= size`), routed through the
  /// slab directory's acquire load so it cannot race slot-storage growth.
  const BitemporalTuple* TuplePinned(RowId row) const {
    return &versions_.AtPinned(row).tuple;
  }

  /// The pin-effective transaction end of `row`: the raw column entry, with
  /// closes stamped after `snap_seq` patched back to ∞.  Safe against a
  /// concurrent in-place close (atomic element loads; see mvcc.h).
  int64_t EffectiveTtEnd(RowId row, uint64_t snap_seq) const {
    const int64_t raw = mvcc::LoadAcquire(col_tt_end_.data() + row);
    if (raw == Chronon::kForeverRep) return raw;
    if (mvcc::LoadRelaxed(col_close_seq_.data() + row) > snap_seq) {
      return Chronon::kForeverRep;
    }
    return raw;
  }

  /// Bulk form: fills `out[0..end-begin)` with the pin-effective
  /// transaction ends of rows `[begin, end)`.
  void FillEffectiveTtEnd(size_t begin, size_t end, uint64_t snap_seq,
                          int64_t* out) const;

  // --- Contiguous chronon columns ------------------------------------------
  //
  // Columnar mirror of every slot's temporal dimensions, maintained by all
  // mutators (including undo, replay, load, and compaction): entry `row` of
  // each array is that slot's chronon rep, and `chronon_live()[row]` is 1
  // for live slots, 0 for tombstones (tombstone entries hold stale chronon
  // values and must be masked first).  This is what the batch scan's
  // branch-free kernels sweep — four flat int64 arrays instead of
  // pointer-chasing `BitemporalTuple`s.
  //
  // The pointers are *published* (StableColumn): growth retains the old
  // buffer, so a snapshot reader's view stays valid for every row under its
  // watermark.  Entries under a published watermark are immutable with one
  // exception — `chronon_tt_end()`, which the writer closes in place;
  // snapshot readers therefore go through `EffectiveTtEnd`, never through
  // plain loads of that column.  `chronon_close_seq()[row]` is the commit
  // sequence the row's close publishes under (0 = created closed / closed
  // before snapshots existed).

  const int64_t* chronon_valid_from() const { return col_valid_from_.data(); }
  const int64_t* chronon_valid_to() const { return col_valid_to_.data(); }
  const int64_t* chronon_tt_start() const { return col_tt_start_.data(); }
  const int64_t* chronon_tt_end() const { return col_tt_end_.data(); }
  const uint8_t* chronon_live() const { return col_live_.data(); }
  const uint64_t* chronon_close_seq() const { return col_close_seq_.data(); }

  /// Creates a secondary B+-tree index on explicit attribute `attr_index`,
  /// backfilling existing live versions.  Idempotent (AlreadyExists on a
  /// second call).  Maintained across all mutations, undo, and replay.
  Status CreateAttributeIndex(size_t attr_index);

  /// True when attribute `attr_index` is indexed.
  bool HasAttributeIndex(size_t attr_index) const {
    return attr_indexes_.contains(attr_index);
  }

  /// Rows (live versions, any transaction state) whose attribute equals
  /// `key`; FailedPrecondition when the attribute is not indexed.
  Result<std::vector<RowId>> LookupAttribute(size_t attr_index,
                                             const Value& key) const;

  /// Replay entry points used by recovery and checkpoint load: apply an
  /// operation *without* a transaction (no undo, no observer).
  Status ApplyReplay(const VersionOp& op);

  /// Checkpoint write path: iterates every slot including tombstones, in
  /// row order (tombstones pass a null tuple).
  void ForEachSlot(const std::function<void(RowId, const BitemporalTuple*)>&
                       fn) const;

  /// Checkpoint load path: appends a slot verbatim — a live version
  /// (indexed) or a tombstone placeholder (keeps later row ids stable).
  RowId LoadSlot(std::optional<BitemporalTuple> tuple);

  /// Physically removes tombstone slots, renumbering row ids and rebuilding
  /// every index.  Returns the number of slots reclaimed.
  ///
  /// DANGER: row ids are NOT stable across compaction.  The only safe call
  /// site is a checkpoint boundary with no active transaction, where the
  /// WAL (whose records reference row ids) is about to be truncated.
  size_t CompactTombstones();

  size_t live_count() const { return live_count_; }
  size_t version_count() const { return versions_.size(); }
  size_t current_count() const;

  /// Monotone counter bumped by every slot mutation (append, close,
  /// correction, undo, load, compaction).  Writer-thread scans capture it;
  /// advancing such a scan under a different epoch is a lifetime bug and
  /// aborts via TDB_INVARIANT_CHECK (see VersionScan).  Snapshot scans are
  /// exempt — the pin, not the epoch, bounds what they may read.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Re-points the parallel-execution knobs of an existing store (the
  /// thread-sweep benches and determinism tests retarget one populated
  /// store rather than rebuilding 100k versions per thread count).  Must
  /// not be called while any scan on this store is open.
  void ConfigureParallel(exec::ThreadPool* pool, size_t min_rows = 0) {
    options_.exec_pool = pool;
    options_.parallel_scan = pool != nullptr;
    if (min_rows > 0) options_.parallel_min_rows = min_rows;
  }

  /// Flips the executor between the batch and row-at-a-time paths on an
  /// existing store (the differential tests diff both paths over one
  /// populated database rather than rebuilding it per arm).  `rows == 0`
  /// keeps the current batch size.  Must not be called while any scan on
  /// this store is open.
  void ConfigureBatchExec(bool batch_exec, size_t rows = 0) {
    options_.batch_exec = batch_exec;
    if (rows > 0) options_.batch_rows = rows;
  }

  /// Flips synopsis-based partition pruning on an existing store (the
  /// ablation and the differential tests compare pruned vs. unpruned scans
  /// over one populated history).  Sealing is unaffected — partitions and
  /// synopses keep being maintained either way.  Writer-thread only; must
  /// not be called while snapshot readers are scanning.
  void ConfigurePartitionPruning(bool enabled) {
    options_.partition_pruning = enabled;
  }

  /// Re-points the pruning-counter sink (see VersionStoreOptions).  Same
  /// call discipline as ConfigurePartitionPruning.
  void set_scan_stats(ScanStats* stats) { options_.scan_stats = stats; }

  // --- Epoch partitions -----------------------------------------------------
  //
  // Sealed (cold) partitions are contiguous from row 0; `sealed_rows()` is
  // the first hot row.  The accessors below are writer-thread views for
  // tests, tooling, and checkpoint serialization — concurrent readers go
  // through `PruneRanges`, which bounds itself by the published partition
  // count instead.

  size_t sealed_partition_count() const { return sealed_.size(); }
  const PartitionSynopsis& sealed_partition(size_t i) const {
    return sealed_[i];
  }
  uint64_t sealed_rows() const { return sealed_rows_; }

  /// Key-sketch probe: false proves no live row of sealed partition `i` has
  /// attribute `attr` equal to `key` (no false negatives; bloom-limited
  /// false positives).  Only the first `PartitionSynopsis::kSketchAttrs`
  /// attributes are sketched.
  bool SealedPartitionMayContain(size_t i, size_t attr,
                                 const Value& key) const {
    if (attr >= PartitionSynopsis::kSketchAttrs) return true;
    return sealed_[i].sketches[attr].MayContain(key);
  }

  /// The surviving candidate row ranges of a sequential sweep over
  /// `[0, limit)` under `preds`: ascending, disjoint, adjacent survivors
  /// merged (so the no-prune result is the single range `[0, limit)` and
  /// downstream chunk geometry matches the unpartitioned store exactly).
  /// `pin` non-null marks a snapshot scan: partitions sealed entirely at or
  /// above the pin's watermark are skipped outright, and transaction-time
  /// upper bounds fall back to ∞ whenever a close in the partition was
  /// stamped after the pin's sequence (DESIGN.md §14 soundness argument).
  /// Thread-safe for concurrent snapshot readers; reports to `scan_stats`.
  std::vector<RowRange> PruneRanges(const BatchPredicates& preds, size_t limit,
                                    const SnapshotPin* pin) const;

  /// Checkpoint-load bracket: between BeginLoad and EndLoad, slot loading
  /// does not auto-seal (recovery installs the checkpoint's sealed
  /// partitions instead of rescanning history to rebuild them).
  void BeginLoad() { loading_ = true; }

  /// Installs checkpoint-serialized sealed partitions over the slots loaded
  /// so far.  Validates contiguity from row 0 and that the sealed extent
  /// fits the store; Corruption otherwise.  `last_close_seq` is reset to 0:
  /// commit sequences do not survive a restart (recovered closes are
  /// unconditionally visible to every post-recovery pin, matching the
  /// close-stamp column which also reloads as 0).  No-op (still OK) when
  /// partitioning is disabled.
  Status InstallSealedPartitions(std::vector<PartitionSynopsis> parts);

  /// Ends the checkpoint-load bracket.  A legacy checkpoint with no
  /// partition sidecar leaves the store unpartitioned here; the next
  /// publication (end of recovery) re-seals by scanning — slower once,
  /// correct always.
  void EndLoad() {
    loading_ = false;
    MaybeSealHot();
  }

  /// Approximate bytes held, for the storage-growth bench.
  size_t ApproximateBytes() const;

  const VersionStoreOptions& options() const { return options_; }

 private:
  struct Slot {
    BitemporalTuple tuple;
    bool tombstone = false;
  };

  void IndexInsert(RowId row, const BitemporalTuple& t);
  void IndexEraseValid(RowId row, const BitemporalTuple& t);
  void AttrIndexInsert(RowId row, const BitemporalTuple& t);
  void AttrIndexErase(RowId row, const BitemporalTuple& t);

  // Raw mutations shared by the transactional path and replay.
  RowId RawAppend(BitemporalTuple tuple);
  Status RawCloseTxn(RowId row, Chronon tt_end);
  Status RawPhysicalDelete(RowId row);
  Status RawPhysicalUpdate(RowId row, BitemporalTuple tuple);
  // Inverses, used by undo.
  void RawUnappend(RowId row);
  void RawReopenTxn(RowId row, Chronon old_end);
  void RawUndelete(RowId row, BitemporalTuple tuple);

  /// Keeps the chronon columns for slot `row` in sync with its tuple.
  void SyncChrononColumns(RowId row);

  // --- Partition lifecycle (writer thread; see DESIGN.md §14) ---------------

  /// Seals full partitions off the stable prefix: everything up to the
  /// committed watermark when MVCC is on (sealed rows must never unappend),
  /// the whole store when it is off.  No-op while loading or when
  /// partitioning is disabled.
  void MaybeSealHot();
  /// Exact synopsis over `[s->begin_row, s->end_row)` from the chronon
  /// columns and live tuples (key sketches from the first attributes).
  void ComputeSynopsis(PartitionSynopsis* s) const;
  /// Writer index of the sealed partition containing `row`; size() if hot.
  size_t SealedIndexOf(RowId row) const;
  /// Incremental synopsis maintenance for an in-place transaction-time
  /// close of a sealed row (and its abort-time undo): runs concurrently
  /// with pinned readers, so the mutable trio is updated with the mvcc
  /// element atomics in reader-compatible order.
  void OnRowClosed(RowId row, Chronon tt_end, uint64_t stamp);
  void OnRowReopened(RowId row);
  /// The sanctioned correction-patch entry point (tdb_lint rule 6): a
  /// physical delete/update/undelete rewrote sealed row `row`, so its
  /// partition's synopsis is recomputed exactly.  Caller holds the
  /// correction fence when MVCC is on — no reader is pinned.
  void RepatchSealedSynopsis(RowId row);

  VersionStoreOptions options_;
  // Slot storage with pointer stability: snapshot readers keep dereferencing
  // rows under their watermark while the writer appends (stable_storage.h).
  SlabVector<Slot> versions_;
  // Columnar chronon mirror (see the chronon_* accessors), published
  // buffers with retained history for the same reason.
  StableColumn<int64_t> col_valid_from_;
  StableColumn<int64_t> col_valid_to_;
  StableColumn<int64_t> col_tt_start_;
  StableColumn<int64_t> col_tt_end_;
  StableColumn<uint8_t> col_live_;
  // Commit sequence each row's transaction-time close publishes under
  // (mvcc.h close-visibility protocol); 0 for rows never closed
  // transactionally.
  StableColumn<uint64_t> col_close_seq_;
  // Committed-row watermark: release-published at group-commit completion,
  // acquire-read by snapshot pins.  Rows at or above it are uncommitted
  // (or unborn) as far as any snapshot is concerned.
  std::atomic<uint64_t> committed_rows_{0};
  // Sealed-partition directory.  Slab storage so a concurrent snapshot
  // reader never races directory growth; `sealed_count_` is the reader-side
  // bound, release-published only after a new synopsis is fully written
  // (same publish idiom as the committed-row watermark).  `sealed_rows_`
  // (writer-only) is the first hot row.  In MVCC mode partitions seal at
  // publication and are never popped; without MVCC (no concurrent readers)
  // sealing is eager at append and an abort-time unappend may unseal.
  SlabVector<PartitionSynopsis> sealed_;
  std::atomic<uint64_t> sealed_count_{0};
  uint64_t sealed_rows_ = 0;
  bool loading_ = false;  // BeginLoad/EndLoad bracket: suppress sealing.
  size_t live_count_ = 0;
  uint64_t mutation_epoch_ = 0;
  SnapshotIndex txn_index_;
  IntervalIndex valid_index_;
  std::map<size_t, std::unique_ptr<BTreeIndex>> attr_indexes_;
  std::function<void(const VersionOp&)> observer_;
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_VERSION_STORE_H_
