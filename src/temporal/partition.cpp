#include "temporal/partition.h"

#include "common/coding.h"

namespace temporadb {

namespace {

// Two independent 64-bit mixes of Value::Hash() drive the double-hashing
// probe sequence bit_i = h1 + i*h2.  The second mix must not be a multiple
// of the first (else all probes collapse onto one stride); a fixed odd
// multiplier + xor-shift keeps them decorrelated for every input.
inline uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

inline void ProbeBits(const Value& v, uint64_t* word, uint64_t* mask,
                      size_t probe) {
  const uint64_t h = static_cast<uint64_t>(v.Hash());
  const uint64_t h1 = Mix(h);
  const uint64_t h2 = Mix(h1) | 1;  // Odd: full period over the bit domain.
  const uint64_t bit =
      (h1 + probe * h2) % (KeySketch::kWords * 64);
  *word = bit >> 6;
  *mask = uint64_t{1} << (bit & 63);
}

}  // namespace

void KeySketch::Add(const Value& v) {
  for (size_t p = 0; p < kProbes; ++p) {
    uint64_t word;
    uint64_t mask;
    ProbeBits(v, &word, &mask, p);
    bits[word] |= mask;
  }
  if (v.type() == ValueType::kInt && ints_only != 0) {
    const int64_t x = v.AsInt();
    if (populated == 0) {
      min_int = x;
      max_int = x;
    } else {
      if (x < min_int) min_int = x;
      if (x > max_int) max_int = x;
    }
  } else {
    ints_only = 0;
  }
  populated = 1;
}

bool KeySketch::MayContain(const Value& v) const {
  if (populated == 0) return false;  // Nothing was sketched: empty set.
  if (ints_only != 0 && v.type() == ValueType::kInt) {
    const int64_t x = v.AsInt();
    if (x < min_int || x > max_int) return false;
  }
  for (size_t p = 0; p < kProbes; ++p) {
    uint64_t word;
    uint64_t mask;
    ProbeBits(v, &word, &mask, p);
    if ((bits[word] & mask) == 0) return false;
  }
  return true;
}

void PartitionSynopsis::EncodeTo(std::string* dst) const {
  PutFixed64(dst, begin_row);
  PutFixed64(dst, end_row);
  PutFixed64(dst, static_cast<uint64_t>(min_valid_from));
  PutFixed64(dst, static_cast<uint64_t>(max_valid_to));
  PutFixed64(dst, static_cast<uint64_t>(min_tt_start));
  PutFixed64(dst, static_cast<uint64_t>(max_finite_tt_end));
  PutFixed64(dst, current_rows);
  PutFixed64(dst, last_close_seq);
  PutFixed64(dst, live_rows);
  for (const KeySketch& s : sketches) {
    for (uint64_t w : s.bits) PutFixed64(dst, w);
    PutFixed64(dst, static_cast<uint64_t>(s.min_int));
    PutFixed64(dst, static_cast<uint64_t>(s.max_int));
    PutFixed32(dst, (uint32_t{s.ints_only} << 8) | uint32_t{s.populated});
  }
}

bool PartitionSynopsis::DecodeFrom(std::string_view* in,
                                   PartitionSynopsis* out) {
  uint64_t u = 0;
  if (!GetFixed64(in, &out->begin_row)) return false;
  if (!GetFixed64(in, &out->end_row)) return false;
  if (!GetFixed64(in, &u)) return false;
  out->min_valid_from = static_cast<int64_t>(u);
  if (!GetFixed64(in, &u)) return false;
  out->max_valid_to = static_cast<int64_t>(u);
  if (!GetFixed64(in, &u)) return false;
  out->min_tt_start = static_cast<int64_t>(u);
  if (!GetFixed64(in, &u)) return false;
  out->max_finite_tt_end = static_cast<int64_t>(u);
  if (!GetFixed64(in, &out->current_rows)) return false;
  if (!GetFixed64(in, &out->last_close_seq)) return false;
  if (!GetFixed64(in, &out->live_rows)) return false;
  for (KeySketch& s : out->sketches) {
    for (uint64_t& w : s.bits) {
      if (!GetFixed64(in, &w)) return false;
    }
    if (!GetFixed64(in, &u)) return false;
    s.min_int = static_cast<int64_t>(u);
    if (!GetFixed64(in, &u)) return false;
    s.max_int = static_cast<int64_t>(u);
    uint32_t flags = 0;
    if (!GetFixed32(in, &flags)) return false;
    s.ints_only = static_cast<uint8_t>((flags >> 8) & 0xff);
    s.populated = static_cast<uint8_t>(flags & 0xff);
  }
  return true;
}

}  // namespace temporadb
