#ifndef TEMPORADB_TEMPORAL_MVCC_H_
#define TEMPORADB_TEMPORAL_MVCC_H_

#include <atomic>
#include <cstdint>

#include "common/chronon.h"
#include "common/status.h"

namespace temporadb {

/// A pinned read position against one version store.
///
/// Appends are made visible to snapshots by the *row watermark*: a reader
/// scans only rows `[0, rows)`, where `rows` was the store's committed row
/// count when the snapshot was pinned.  In-place transaction-time closes
/// (`tt_end`: ∞ → ts) are made visible by the *commit sequence*: every
/// close is stamped with the commit sequence number it will be published
/// under, and a snapshot pinned at `seq` treats any close stamped later
/// than `seq` as not-yet-happened (the row still reads as current).
///
/// The sequence number — not the chronon — is the visibility authority for
/// closes: chronons are day-granular, so many commits share one timestamp
/// and `tt_start <= snap_ts` alone cannot tell a pre-pin close from a
/// same-day post-pin close.  `ts` records the last published commit
/// timestamp at pin time; by timestamp monotonicity (TxnManager's clamp)
/// every row under the watermark satisfies `tt_start <= ts`.
struct SnapshotPin {
  uint64_t seq = 0;                    ///< Commits published at/before pin.
  uint64_t rows = 0;                   ///< Committed-row watermark.
  Chronon ts = Chronon::Beginning();   ///< Last published commit timestamp.
};

/// Shared coordination state between the single serialized writer and
/// concurrent snapshot readers.  One instance per `Database`, handed to
/// every version store via `VersionStoreOptions::mvcc`.
///
/// All members are atomics — there is no mutex on the read path and readers
/// never block the writer.  Consistency of a pin (commit_seq, timestamp,
/// and all per-store watermarks from the *same* commit) comes from the
/// `publish_word` seqlock: the writer makes it odd, publishes every
/// watermark plus commit_seq/last_commit_ts, then makes it even; a reader
/// retries its capture if the word was odd or changed across the capture.
///
/// In-place *corrections* (historical/static physical rewrites, tombstone
/// compaction) are the one mutation class snapshots cannot tolerate — they
/// rewrite rows under the watermark.  They are excluded from snapshot reads
/// with a Dekker-style handshake on `correcting` / `active_snapshots`
/// rather than blocked behind a lock: a correction first raises
/// `correcting`, then fails with FailedPrecondition if any snapshot is
/// pinned; a reader first registers in `active_snapshots`, then backs off
/// and retries while `correcting` is raised.  With seq_cst on both sides at
/// least one of the two always observes the other, so a correction and a
/// pin can never both proceed.
class MvccState {
 public:
  /// Seqlock word for pin capture; odd while the writer is publishing.
  std::atomic<uint64_t> publish_word{0};
  /// Number of commits published so far; closes are stamped `commit_seq+1`
  /// at mutation time and become visible when publication catches up.
  std::atomic<uint64_t> commit_seq{0};
  /// Timestamp (chronon rep) of the most recently published commit.
  std::atomic<int64_t> last_commit_ts{Chronon::kBeginningRep};
  /// Number of live `ReadSnapshot` pins.
  std::atomic<int64_t> active_snapshots{0};
  /// Raised (>0) from the first in-place correction of a transaction until
  /// the transaction commits or finishes aborting — the abort-time undo of
  /// a correction is itself an in-place rewrite and must stay covered.
  std::atomic<int64_t> correcting{0};

  /// Writer side of the correction handshake.  On success `correcting`
  /// stays raised; the owning Database lowers it at transaction end (after
  /// undo actions have run) via `EndCorrections()`.
  Status BeginCorrection() {
    correcting.fetch_add(1, std::memory_order_seq_cst);
    if (active_snapshots.load(std::memory_order_seq_cst) != 0) {
      correcting.fetch_sub(1, std::memory_order_seq_cst);
      return Status::FailedPrecondition(
          "in-place history mutation (correction/compaction) while read "
          "snapshots are pinned; release all snapshots first");
    }
    return Status::OK();
  }

  void EndCorrections() { correcting.store(0, std::memory_order_seq_cst); }
};

namespace mvcc {

/// Element-level atomic accessors for the shared chronon columns.  The
/// writer closes a row by storing its `tt_end` entry (release) after the
/// close-sequence stamp (relaxed); a snapshot reader loads `tt_end`
/// (acquire) and then the stamp (relaxed) — seeing a finite tt_end
/// therefore guarantees seeing its stamp, and any close the pin must hide
/// is patched back to ∞.  Entries under a pinned watermark are otherwise
/// immutable while snapshots are open (corrections are excluded above), so
/// every other column read stays a plain load.
inline int64_t LoadAcquire(const int64_t* p) {
  // atomic_ref<const T> arrives only post-C++20; the const_cast is sound
  // because a load never writes through the reference.
  return std::atomic_ref<int64_t>(*const_cast<int64_t*>(p))
      .load(std::memory_order_acquire);
}
inline uint64_t LoadAcquire(const uint64_t* p) {
  return std::atomic_ref<uint64_t>(*const_cast<uint64_t*>(p))
      .load(std::memory_order_acquire);
}
inline int64_t LoadRelaxed(const int64_t* p) {
  return std::atomic_ref<int64_t>(*const_cast<int64_t*>(p))
      .load(std::memory_order_relaxed);
}
inline uint64_t LoadRelaxed(const uint64_t* p) {
  return std::atomic_ref<uint64_t>(*const_cast<uint64_t*>(p))
      .load(std::memory_order_relaxed);
}
inline void StoreRelease(int64_t* p, int64_t v) {
  std::atomic_ref<int64_t>(*p).store(v, std::memory_order_release);
}
inline void StoreRelease(uint64_t* p, uint64_t v) {
  std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_release);
}
inline void StoreRelaxed(int64_t* p, int64_t v) {
  std::atomic_ref<int64_t>(*p).store(v, std::memory_order_relaxed);
}
inline void StoreRelaxed(uint64_t* p, uint64_t v) {
  std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_relaxed);
}

}  // namespace mvcc
}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_MVCC_H_
