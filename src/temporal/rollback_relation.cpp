#include "temporal/rollback_relation.h"

namespace temporadb {

Status RollbackRelation::Append(Transaction* txn, std::vector<Value> values,
                                std::optional<Period> valid) {
  TDB_RETURN_IF_ERROR(RejectValidPeriod(valid));
  TDB_ASSIGN_OR_RETURN(values, CheckValues(std::move(values)));
  BitemporalTuple tuple;
  tuple.values = std::move(values);
  tuple.valid = Period::All();  // No valid-time semantics in this kind.
  tuple.txn = Period::From(txn->timestamp());
  TDB_ASSIGN_OR_RETURN(RowId row, store_.Append(txn, std::move(tuple)));
  (void)row;
  return Status::OK();
}

namespace {

// Snapshot-mode residual predicates: same semantics as the index arms
// below (the indexes only prune), with no valid-time dimension.
BatchPredicates SnapshotPreds(const ScanSpec& spec) {
  BatchPredicates preds;
  if (spec.asof.has_value()) {
    const Period w = *spec.asof;
    if (w.IsInstant()) {
      preds.txn_contains = w.begin();
    } else {
      preds.txn_overlaps = w;
    }
  } else {
    preds.txn_current = true;
  }
  return preds;
}

}  // namespace

VersionScan RollbackRelation::Scan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    return store_.ScanSnapshot(*spec.snapshot, SnapshotPreds(spec));
  }
  if (spec.asof.has_value()) {
    const Period w = *spec.asof;
    if (store_.options().time_pushdown) {
      if (w.IsInstant()) return store_.ScanAsOf(w.begin());
      return store_.ScanTxnOverlapping(w);
    }
    return store_.ScanAll(
        [w](const BitemporalTuple& t) { return t.txn.Overlaps(w); });
  }
  return store_.ScanCurrent();
}

VersionBatchScan RollbackRelation::BatchScan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    return store_.BatchScanSnapshot(*spec.snapshot, SnapshotPreds(spec));
  }
  if (spec.asof.has_value()) {
    const Period w = *spec.asof;
    if (store_.options().time_pushdown) {
      if (w.IsInstant()) return store_.BatchScanAsOf(w.begin());
      return store_.BatchScanTxnOverlapping(w);
    }
    BatchPredicates preds;
    preds.txn_overlaps = w;
    return store_.BatchScanAll(std::move(preds));
  }
  return store_.BatchScanCurrent();
}

Result<size_t> RollbackRelation::DoDeleteWhere(Transaction* txn,
                                               const TuplePredicate& pred,
                                               std::optional<Period> valid,
                                               const PeriodPredicate& when) {
  (void)when;  // Rejected by the base wrapper (no valid time).
  TDB_RETURN_IF_ERROR(RejectValidPeriod(valid));
  // Only the current state is mutable; deleting means the tuple stops being
  // part of the stored state from this transaction on.  Past states are
  // untouched and remain reachable by rollback.
  size_t affected = 0;
  for (RowId row : store_.CurrentRows()) {
    Result<const BitemporalTuple*> t = store_.Get(row);
    if (!t.ok()) return t.status();
    if (!pred((*t)->values)) continue;
    TDB_RETURN_IF_ERROR(store_.CloseTxn(txn, row, txn->timestamp()));
    ++affected;
  }
  return affected;
}

Result<size_t> RollbackRelation::DoReplaceWhere(Transaction* txn,
                                                const TuplePredicate& pred,
                                                const UpdateSpec& updates,
                                                std::optional<Period> valid,
                                                const PeriodPredicate& when) {
  (void)when;  // Rejected by the base wrapper (no valid time).
  TDB_RETURN_IF_ERROR(RejectValidPeriod(valid));
  // Close the old version at T and append the updated one at [T, ∞): the
  // new static state differs from the old exactly in the replaced tuples.
  size_t affected = 0;
  for (RowId row : store_.CurrentRows()) {
    Result<const BitemporalTuple*> t = store_.Get(row);
    if (!t.ok()) return t.status();
    if (!pred((*t)->values)) continue;
    BitemporalTuple updated = **t;
    TDB_ASSIGN_OR_RETURN(updated.values,
                         ApplyUpdates(updates, updated.values));
    TDB_ASSIGN_OR_RETURN(updated.values,
                         CheckValues(std::move(updated.values)));
    updated.txn = Period::From(txn->timestamp());
    TDB_RETURN_IF_ERROR(store_.CloseTxn(txn, row, txn->timestamp()));
    TDB_ASSIGN_OR_RETURN(RowId new_row,
                         store_.Append(txn, std::move(updated)));
    (void)new_row;
    ++affected;
  }
  return affected;
}

}  // namespace temporadb
