#include "temporal/bitemporal_tuple.h"

#include "common/coding.h"
#include "storage/tuple.h"

namespace temporadb {

void BitemporalTuple::EncodeTo(std::string* out) const {
  PutFixed64(out, static_cast<uint64_t>(valid.begin().days()));
  PutFixed64(out, static_cast<uint64_t>(valid.end().days()));
  PutFixed64(out, static_cast<uint64_t>(txn.begin().days()));
  PutFixed64(out, static_cast<uint64_t>(txn.end().days()));
  tuple_codec::EncodeValuesUnchecked(values, out);
}

Result<BitemporalTuple> BitemporalTuple::DecodeFrom(std::string_view* in) {
  uint64_t vb, ve, tb, te;
  if (!GetFixed64(in, &vb) || !GetFixed64(in, &ve) || !GetFixed64(in, &tb) ||
      !GetFixed64(in, &te)) {
    return Status::Corruption("bitemporal tuple: truncated periods");
  }
  BitemporalTuple t;
  t.valid = Period(Chronon(static_cast<int64_t>(vb)),
                   Chronon(static_cast<int64_t>(ve)));
  t.txn = Period(Chronon(static_cast<int64_t>(tb)),
                 Chronon(static_cast<int64_t>(te)));
  TDB_ASSIGN_OR_RETURN(t.values, tuple_codec::DecodeValues(in));
  return t;
}

std::string BitemporalTuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += ") v";
  out += valid.ToString();
  out += " t";
  out += txn.ToString();
  return out;
}

}  // namespace temporadb
