#include "temporal/coalesce.h"

#include <algorithm>
#include <map>

namespace temporadb {

namespace {

// Group key: explicit values + transaction period (valid periods merge only
// within a single stored state).
struct GroupKey {
  const BitemporalTuple* tuple;

  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    const auto& av = a.tuple->values;
    const auto& bv = b.tuple->values;
    if (av.size() != bv.size()) return av.size() < bv.size();
    for (size_t i = 0; i < av.size(); ++i) {
      if (av[i] < bv[i]) return true;
      if (bv[i] < av[i]) return false;
    }
    const Period at = a.tuple->txn;
    const Period bt = b.tuple->txn;
    if (at.begin() != bt.begin()) return at.begin() < bt.begin();
    return at.end() < bt.end();
  }
};

}  // namespace

std::vector<BitemporalTuple> Coalesce(std::vector<BitemporalTuple> tuples) {
  std::map<GroupKey, std::vector<size_t>> groups;
  for (size_t i = 0; i < tuples.size(); ++i) {
    groups[GroupKey{&tuples[i]}].push_back(i);
  }
  std::vector<BitemporalTuple> out;
  out.reserve(tuples.size());
  for (auto& [key, members] : groups) {
    // Sort the group's valid periods and sweep, merging overlap/meet.
    std::sort(members.begin(), members.end(), [&](size_t a, size_t b) {
      return tuples[a].valid.begin() < tuples[b].valid.begin();
    });
    Period run = tuples[members[0]].valid;
    for (size_t k = 1; k < members.size(); ++k) {
      Period next = tuples[members[k]].valid;
      if (next.begin() <= run.end()) {
        run = Period(run.begin(), MaxChronon(run.end(), next.end()));
      } else {
        BitemporalTuple merged = tuples[members[0]];
        merged.valid = run;
        out.push_back(std::move(merged));
        run = next;
      }
    }
    BitemporalTuple merged = tuples[members[0]];
    merged.valid = run;
    out.push_back(std::move(merged));
  }
  // Deterministic output order: by values, then valid begin.
  std::sort(out.begin(), out.end(),
            [](const BitemporalTuple& a, const BitemporalTuple& b) {
              if (GroupKey{&a} < GroupKey{&b}) return true;
              if (GroupKey{&b} < GroupKey{&a}) return false;
              return a.valid.begin() < b.valid.begin();
            });
  return out;
}

bool IsCoalesced(const std::vector<BitemporalTuple>& tuples) {
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = i + 1; j < tuples.size(); ++j) {
      const BitemporalTuple& a = tuples[i];
      const BitemporalTuple& b = tuples[j];
      if (a.values != b.values || a.txn != b.txn) continue;
      // Mergeable: overlapping or meeting valid periods.
      if (a.valid.Overlaps(b.valid) || a.valid.Meets(b.valid) ||
          b.valid.Meets(a.valid)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace temporadb
