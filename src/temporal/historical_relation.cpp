#include "temporal/historical_relation.h"

namespace temporadb {

Status HistoricalRelation::Append(Transaction* txn, std::vector<Value> values,
                                  std::optional<Period> valid) {
  TDB_ASSIGN_OR_RETURN(values, CheckValues(std::move(values)));
  TDB_ASSIGN_OR_RETURN(Period period, ResolveValidPeriod(txn, valid));
  BitemporalTuple tuple;
  tuple.values = std::move(values);
  tuple.valid = period;
  tuple.txn = Period::All();  // Transaction time is not maintained.
  TDB_ASSIGN_OR_RETURN(RowId row, store_.Append(txn, std::move(tuple)));
  (void)row;
  return Status::OK();
}

VersionScan HistoricalRelation::Scan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    // No transaction time: every row under the pin's watermark is visible
    // (corrections cannot run while snapshots are pinned), optionally
    // narrowed by the valid-time window.
    BatchPredicates preds;
    preds.valid_overlaps = spec.valid_during;
    return store_.ScanSnapshot(*spec.snapshot, std::move(preds));
  }
  if (spec.valid_during.has_value() && store_.options().time_pushdown) {
    return store_.ScanValidDuring(*spec.valid_during);
  }
  return store_.ScanAll();
}

VersionBatchScan HistoricalRelation::BatchScan(const ScanSpec& spec) const {
  if (spec.snapshot.has_value()) {
    BatchPredicates preds;
    preds.valid_overlaps = spec.valid_during;
    return store_.BatchScanSnapshot(*spec.snapshot, std::move(preds));
  }
  if (spec.valid_during.has_value() && store_.options().time_pushdown) {
    return store_.BatchScanValidDuring(*spec.valid_during);
  }
  return store_.BatchScanAll();
}

Result<size_t> HistoricalRelation::DoDeleteWhere(Transaction* txn,
                                                 const TuplePredicate& pred,
                                                 std::optional<Period> valid,
                                                 const PeriodPredicate& when) {
  TDB_ASSIGN_OR_RETURN(Period del, ResolveValidPeriod(txn, valid));
  // Select victims first: mutating while scanning the interval index would
  // invalidate the traversal.
  std::vector<RowId> victims;
  for (RowId row : store_.ValidOverlapping(del)) {
    Result<const BitemporalTuple*> t = store_.Get(row);
    if (!t.ok()) return t.status();
    if (when != nullptr && !when((*t)->valid)) continue;
    if (pred((*t)->values)) victims.push_back(row);
  }
  for (RowId row : victims) {
    TDB_ASSIGN_OR_RETURN(const BitemporalTuple* t, store_.Get(row));
    BitemporalTuple old = *t;
    // The fact's validity minus the deleted period: up to two remnants.
    Period left(old.valid.begin(), MinChronon(old.valid.end(), del.begin()));
    Period right(MaxChronon(old.valid.begin(), del.end()), old.valid.end());
    bool keep_left = !left.IsEmpty();
    bool keep_right = !right.IsEmpty();
    if (keep_left && keep_right) {
      // Deleted period strictly inside: split into two versions.
      BitemporalTuple l = old;
      l.valid = left;
      TDB_RETURN_IF_ERROR(store_.PhysicalUpdate(txn, row, std::move(l)));
      BitemporalTuple r = old;
      r.valid = right;
      TDB_ASSIGN_OR_RETURN(RowId new_row, store_.Append(txn, std::move(r)));
      (void)new_row;
    } else if (keep_left || keep_right) {
      BitemporalTuple trimmed = old;
      trimmed.valid = keep_left ? left : right;
      TDB_RETURN_IF_ERROR(store_.PhysicalUpdate(txn, row, std::move(trimmed)));
    } else {
      // Entire validity deleted: the fact never was (as best we now know).
      TDB_RETURN_IF_ERROR(store_.PhysicalDelete(txn, row));
    }
  }
  return victims.size();
}

Result<size_t> HistoricalRelation::DoReplaceWhere(Transaction* txn,
                                                  const TuplePredicate& pred,
                                                  const UpdateSpec& updates,
                                                  std::optional<Period> valid,
                                                  const PeriodPredicate& when) {
  TDB_ASSIGN_OR_RETURN(Period rep, ResolveValidPeriod(txn, valid));
  // Replace = delete the old values over the period, then record the new
  // values over (old validity ∩ period).  Collect the insertions before
  // deleting so the predicate sees the pre-statement state.
  std::vector<BitemporalTuple> insertions;
  for (RowId row : store_.ValidOverlapping(rep)) {
    Result<const BitemporalTuple*> t = store_.Get(row);
    if (!t.ok()) return t.status();
    if (when != nullptr && !when((*t)->valid)) continue;
    if (!pred((*t)->values)) continue;
    BitemporalTuple updated = **t;
    TDB_ASSIGN_OR_RETURN(updated.values,
                         ApplyUpdates(updates, updated.values));
    TDB_ASSIGN_OR_RETURN(updated.values,
                         CheckValues(std::move(updated.values)));
    updated.valid = updated.valid.Intersect(rep);
    insertions.push_back(std::move(updated));
  }
  if (insertions.empty()) return static_cast<size_t>(0);
  TDB_ASSIGN_OR_RETURN(size_t deleted, DeleteWhere(txn, pred, rep, when));
  (void)deleted;
  for (BitemporalTuple& t : insertions) {
    TDB_ASSIGN_OR_RETURN(RowId row, store_.Append(txn, std::move(t)));
    (void)row;
  }
  return insertions.size();
}

Result<size_t> HistoricalRelation::CorrectErase(Transaction* txn,
                                                const TuplePredicate& pred) {
  std::vector<RowId> victims;
  store_.ForEach([&](RowId row, const BitemporalTuple& t) {
    if (pred(t.values)) victims.push_back(row);
  });
  for (RowId row : victims) {
    TDB_RETURN_IF_ERROR(store_.PhysicalDelete(txn, row));
  }
  return victims.size();
}

}  // namespace temporadb
