#ifndef TEMPORADB_TEMPORAL_BITEMPORAL_TUPLE_H_
#define TEMPORADB_TEMPORAL_BITEMPORAL_TUPLE_H_

#include <string>
#include <vector>

#include "common/period.h"
#include "common/result.h"
#include "common/value.h"

namespace temporadb {

/// A stored tuple version: explicit attribute values plus the two
/// DBMS-maintained temporal dimensions.
///
/// This is the row format of the paper's Figure 8:
///
/// | name   | rank      | valid (from, to)     | transaction (start, end) |
/// |--------|-----------|----------------------|--------------------------|
/// | Merrie | associate | 09/01/77 -- 12/01/82 | 12/15/82 -- ∞            |
///
/// Kinds that lack a dimension store it degenerately as `Period::All()`:
/// a static relation's tuples are "always valid, always stored" — which is
/// precisely the paper's point that a static relation is the degenerate case
/// of a temporal one.
struct BitemporalTuple {
  std::vector<Value> values;  ///< Explicit (schema) attributes.
  Period valid = Period::All();  ///< When the fact holds in reality.
  Period txn = Period::All();    ///< When the fact was part of the DB state.

  /// True when this version belongs to the current stored state (its
  /// transaction period has not been closed).
  bool IsCurrentState() const { return txn.end().IsForever(); }

  /// True when the fact is (believed) still true in reality.
  bool IsValidNow(Chronon now) const { return valid.Contains(now); }

  /// Binary round-trip for the WAL and checkpoint files.
  void EncodeTo(std::string* out) const;
  static Result<BitemporalTuple> DecodeFrom(std::string_view* in);

  /// "(Merrie, associate) v[09/01/77, 12/01/82) t[12/15/82, inf)".
  std::string ToString() const;

  friend bool operator==(const BitemporalTuple& a, const BitemporalTuple& b) {
    return a.values == b.values && a.valid == b.valid && a.txn == b.txn;
  }
};

}  // namespace temporadb

#endif  // TEMPORADB_TEMPORAL_BITEMPORAL_TUPLE_H_
