#include "catalog/schema.h"

#include <unordered_set>

#include "common/coding.h"

namespace temporadb {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const auto& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
  }
  return Schema(std::move(attributes));
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Project(const std::vector<size_t>& indexes,
                       const std::vector<std::string>* names) const {
  std::vector<Attribute> attrs;
  attrs.reserve(indexes.size());
  for (size_t i = 0; i < indexes.size(); ++i) {
    Attribute a = attributes_[indexes[i]];
    if (names != nullptr && i < names->size() && !(*names)[i].empty()) {
      a.name = (*names)[i];
    }
    attrs.push_back(std::move(a));
  }
  return Schema(std::move(attrs));
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Attribute> attrs = attributes_;
  attrs.insert(attrs.end(), other.attributes_.begin(),
               other.attributes_.end());
  return Schema(std::move(attrs));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += attributes_[i].type.name();
  }
  out += ")";
  return out;
}

void Schema::EncodeTo(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(attributes_.size()));
  for (const auto& a : attributes_) {
    PutLengthPrefixed(out, a.name);
    PutFixed32(out, static_cast<uint32_t>(a.type.value_type()));
  }
}

Result<Schema> Schema::DecodeFrom(std::string_view* in) {
  uint32_t n;
  if (!GetFixed32(in, &n)) {
    return Status::Corruption("schema: truncated attribute count");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view name;
    uint32_t vt;
    if (!GetLengthPrefixed(in, &name) || !GetFixed32(in, &vt)) {
      return Status::Corruption("schema: truncated attribute");
    }
    attrs.push_back(
        Attribute{std::string(name), Type(static_cast<ValueType>(vt))});
  }
  return Schema(std::move(attrs));
}

}  // namespace temporadb
