#ifndef TEMPORADB_CATALOG_TYPE_H_
#define TEMPORADB_CATALOG_TYPE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"

namespace temporadb {

/// The declared type of a schema attribute.
///
/// `kDate` attributes are the paper's *user-defined time* (§4.5): present in
/// the relation schema (unlike transaction/valid time), parsed and printed
/// by the DBMS, never interpreted by the temporal machinery.
class Type {
 public:
  /// Defaults to string; prefer the named factories.
  Type() : value_type_(ValueType::kString) {}
  explicit Type(ValueType vt) : value_type_(vt) {}

  static Type Int() { return Type(ValueType::kInt); }
  static Type Float() { return Type(ValueType::kFloat); }
  static Type String() { return Type(ValueType::kString); }
  static Type DateType() { return Type(ValueType::kDate); }
  static Type Bool() { return Type(ValueType::kBool); }

  ValueType value_type() const { return value_type_; }

  /// Quel/TQuel type syntax: `i1..i8` are ints, `f4`/`f8` floats, `cN`/`c`
  /// strings, `date` dates, `bool` bools.
  static Result<Type> ParseQuelType(std::string_view text);

  /// Canonical name: "int", "float", "string", "date", "bool".
  std::string_view name() const { return ValueTypeName(value_type_); }

  /// True when a `Value` of type `v` may be stored in this attribute
  /// (ints accepted into float attributes; NULL accepted anywhere).
  bool Admits(const Value& v) const;

  /// Coerces `v` for storage (int -> float promotion); error if not
  /// admissible.
  Result<Value> Coerce(const Value& v) const;

  /// Parses a literal in this type from text (used by the TQuel evaluator
  /// for typed constants and by CSV-style loaders).
  Result<Value> ParseValue(std::string_view text) const;

  friend bool operator==(Type a, Type b) {
    return a.value_type_ == b.value_type_;
  }
  friend bool operator!=(Type a, Type b) { return !(a == b); }

 private:
  ValueType value_type_;
};

}  // namespace temporadb

#endif  // TEMPORADB_CATALOG_TYPE_H_
