#include "catalog/catalog.h"

#include "common/coding.h"

namespace temporadb {

Result<RelationInfo> Catalog::CreateRelation(std::string name, Schema schema,
                                             TemporalClass temporal_class,
                                             TemporalDataModel data_model,
                                             bool persistent) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (relations_.contains(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  if (schema.empty()) {
    return Status::InvalidArgument("relation must have at least one attribute");
  }
  if (data_model == TemporalDataModel::kEvent &&
      !SupportsValidTime(temporal_class)) {
    return Status::InvalidArgument(
        "event relations require valid time (historical or temporal class)");
  }
  RelationInfo info;
  info.id = next_id_++;
  info.name = name;
  info.schema = std::move(schema);
  info.temporal_class = temporal_class;
  info.data_model = data_model;
  info.persistent = persistent;
  relations_.emplace(std::move(name), info);
  return info;
}

Result<RelationInfo> Catalog::GetRelation(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + std::string(name));
  }
  return it->second;
}

bool Catalog::HasRelation(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

Status Catalog::DropRelation(std::string_view name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + std::string(name));
  }
  relations_.erase(it);
  return Status::OK();
}

std::vector<RelationInfo> Catalog::ListRelations() const {
  std::vector<RelationInfo> out;
  out.reserve(relations_.size());
  for (const auto& [name, info] : relations_) out.push_back(info);
  return out;
}

void Catalog::EncodeTo(std::string* out) const {
  PutFixed64(out, next_id_);
  PutFixed32(out, static_cast<uint32_t>(relations_.size()));
  for (const auto& [name, info] : relations_) {
    PutFixed64(out, info.id);
    PutLengthPrefixed(out, info.name);
    info.schema.EncodeTo(out);
    PutFixed32(out, static_cast<uint32_t>(info.temporal_class));
    PutFixed32(out, static_cast<uint32_t>(info.data_model));
    PutFixed32(out, info.persistent ? 1 : 0);
  }
}

Result<Catalog> Catalog::DecodeFrom(std::string_view* in) {
  Catalog catalog;
  uint64_t next_id;
  uint32_t count;
  if (!GetFixed64(in, &next_id) || !GetFixed32(in, &count)) {
    return Status::Corruption("catalog: truncated header");
  }
  catalog.next_id_ = next_id;
  for (uint32_t i = 0; i < count; ++i) {
    RelationInfo info;
    std::string_view name;
    if (!GetFixed64(in, &info.id) || !GetLengthPrefixed(in, &name)) {
      return Status::Corruption("catalog: truncated relation entry");
    }
    info.name = std::string(name);
    TDB_ASSIGN_OR_RETURN(info.schema, Schema::DecodeFrom(in));
    uint32_t tclass, dmodel, persistent;
    if (!GetFixed32(in, &tclass) || !GetFixed32(in, &dmodel) ||
        !GetFixed32(in, &persistent)) {
      return Status::Corruption("catalog: truncated relation flags");
    }
    info.temporal_class = static_cast<TemporalClass>(tclass);
    info.data_model = static_cast<TemporalDataModel>(dmodel);
    info.persistent = persistent != 0;
    catalog.relations_.emplace(info.name, info);
  }
  return catalog;
}

}  // namespace temporadb
