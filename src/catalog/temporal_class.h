#ifndef TEMPORADB_CATALOG_TEMPORAL_CLASS_H_
#define TEMPORADB_CATALOG_TEMPORAL_CLASS_H_

#include <string_view>

namespace temporadb {

/// The paper's four kinds of database (Figure 10), applied per relation.
///
/// Two orthogonal capabilities define the kind:
///  - *rollback* (the `as of` operation), which requires transaction time;
///  - *historical queries* (the `when`/`valid` constructs), which require
///    valid time.
///
/// |                    | no rollback | rollback        |
/// |--------------------|-------------|-----------------|
/// | static queries     | kStatic     | kRollback       |
/// | historical queries | kHistorical | kTemporal       |
enum class TemporalClass {
  kStatic = 0,      ///< Snapshot only; updates discard the past (§4.1).
  kRollback = 1,    ///< Static rollback: transaction time, append-only (§4.2).
  kHistorical = 2,  ///< Valid time, arbitrary correction, no rollback (§4.3).
  kTemporal = 3,    ///< Both times: a bitemporal relation (§4.4).
};

/// Interval vs. event relations (§4.5).  An *interval* relation's valid time
/// is a period `[from, to)`; an *event* relation's valid time is a single
/// chronon ("at"), e.g. the `promotion` relation of Figure 9.  The
/// distinction only matters for classes with valid time.
enum class TemporalDataModel {
  kInterval = 0,
  kEvent = 1,
};

/// "static", "rollback", "historical", "temporal".
std::string_view TemporalClassName(TemporalClass c);

/// "interval" or "event".
std::string_view TemporalDataModelName(TemporalDataModel m);

/// Figure 11, column "Transaction": does this kind maintain transaction
/// time?  Equivalent to supporting the rollback (`as of`) operation.
constexpr bool SupportsTransactionTime(TemporalClass c) {
  return c == TemporalClass::kRollback || c == TemporalClass::kTemporal;
}

/// Figure 11, column "Valid": does this kind maintain valid time?
/// Equivalent to supporting historical queries (`when`, `valid`).
constexpr bool SupportsValidTime(TemporalClass c) {
  return c == TemporalClass::kHistorical || c == TemporalClass::kTemporal;
}

/// §5: "DBMS's supporting rollback are append-only, whereas those not
/// supporting rollback allow updates of arbitrary information."
constexpr bool IsAppendOnly(TemporalClass c) {
  return SupportsTransactionTime(c);
}

/// The temporal class of a relation *derived* by a query over a relation of
/// class `c`:
///  - a rolled-back state of a rollback relation is "a pure static relation"
///    (§4.2);
///  - a historical query derives "also an historical relation, which may be
///    used in further historical queries" (§4.3);
///  - a temporal query derives "a temporal relation, so further temporal
///    relations can be derived from it" (§4.4).
constexpr TemporalClass DerivedClass(TemporalClass c) {
  switch (c) {
    case TemporalClass::kStatic:
    case TemporalClass::kRollback:
      return TemporalClass::kStatic;
    case TemporalClass::kHistorical:
      return TemporalClass::kHistorical;
    case TemporalClass::kTemporal:
      return TemporalClass::kTemporal;
  }
  return TemporalClass::kStatic;
}

/// True when `a` and `b` have a meet in the capability lattice, i.e. the
/// classes are comparable: one side's capability set contains the other's.
/// The one incomparable pair is rollback x historical — each maintains
/// exactly the time dimension the other lacks, so a product would have to
/// drop *both* dimensions, silently discarding all temporal content.  The
/// product operators reject that pairing instead of guessing.
constexpr bool HasMeetClass(TemporalClass a, TemporalClass b) {
  const bool a_in_b = (!SupportsTransactionTime(a) || SupportsTransactionTime(b)) &&
                      (!SupportsValidTime(a) || SupportsValidTime(b));
  const bool b_in_a = (!SupportsTransactionTime(b) || SupportsTransactionTime(a)) &&
                      (!SupportsValidTime(b) || SupportsValidTime(a));
  return a_in_b || b_in_a;
}

/// The class of a relation produced by joining relations of classes `a` and
/// `b`: the meet in the capability lattice (a dimension survives only if
/// both inputs carry it).  Only meaningful when `HasMeetClass(a, b)`.
constexpr TemporalClass MeetClass(TemporalClass a, TemporalClass b) {
  bool tt = SupportsTransactionTime(a) && SupportsTransactionTime(b);
  bool vt = SupportsValidTime(a) && SupportsValidTime(b);
  if (tt && vt) return TemporalClass::kTemporal;
  if (tt) return TemporalClass::kRollback;
  if (vt) return TemporalClass::kHistorical;
  return TemporalClass::kStatic;
}

}  // namespace temporadb

#endif  // TEMPORADB_CATALOG_TEMPORAL_CLASS_H_
