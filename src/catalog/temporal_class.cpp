#include "catalog/temporal_class.h"

namespace temporadb {

std::string_view TemporalClassName(TemporalClass c) {
  switch (c) {
    case TemporalClass::kStatic:
      return "static";
    case TemporalClass::kRollback:
      return "rollback";
    case TemporalClass::kHistorical:
      return "historical";
    case TemporalClass::kTemporal:
      return "temporal";
  }
  return "unknown";
}

std::string_view TemporalDataModelName(TemporalDataModel m) {
  switch (m) {
    case TemporalDataModel::kInterval:
      return "interval";
    case TemporalDataModel::kEvent:
      return "event";
  }
  return "unknown";
}

}  // namespace temporadb
