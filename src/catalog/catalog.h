#ifndef TEMPORADB_CATALOG_CATALOG_H_
#define TEMPORADB_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/temporal_class.h"
#include "common/result.h"

namespace temporadb {

/// Catalog metadata for one relation.
struct RelationInfo {
  uint64_t id = 0;
  std::string name;
  Schema schema;                   ///< Explicit attributes only.
  TemporalClass temporal_class = TemporalClass::kStatic;
  TemporalDataModel data_model = TemporalDataModel::kInterval;
  bool persistent = false;         ///< Backed by the paged storage engine.
};

/// The system catalog: relation name -> metadata.
///
/// The catalog stores only *metadata*; the relation contents live in the
/// temporal layer's relation objects, which the `core::Database` facade
/// associates with catalog entries by id.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a relation; fails with AlreadyExists on a name clash.
  Result<RelationInfo> CreateRelation(std::string name, Schema schema,
                                      TemporalClass temporal_class,
                                      TemporalDataModel data_model,
                                      bool persistent);

  /// Looks up by name; NotFound if absent.
  Result<RelationInfo> GetRelation(std::string_view name) const;

  bool HasRelation(std::string_view name) const;

  /// Removes a relation (TQuel `destroy`).
  Status DropRelation(std::string_view name);

  /// All relations in name order.
  std::vector<RelationInfo> ListRelations() const;

  /// Binary round-trip so the catalog can be persisted alongside the data.
  void EncodeTo(std::string* out) const;
  static Result<Catalog> DecodeFrom(std::string_view* in);

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, RelationInfo, std::less<>> relations_;
  uint64_t next_id_ = 1;
};

}  // namespace temporadb

#endif  // TEMPORADB_CATALOG_CATALOG_H_
