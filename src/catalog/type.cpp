#include "catalog/type.h"

#include <charconv>

#include "common/strings.h"

namespace temporadb {

Result<Type> Type::ParseQuelType(std::string_view text) {
  std::string t = ToLowerAscii(Trim(text));
  if (t.empty()) return Status::InvalidArgument("empty type name");
  if (t == "int" || t == "integer") return Type::Int();
  if (t == "float" || t == "double") return Type::Float();
  if (t == "string" || t == "text" || t == "c") return Type::String();
  if (t == "date") return Type::DateType();
  if (t == "bool" || t == "boolean") return Type::Bool();
  // Quel's iN / fN / cN width-qualified names.
  if ((t[0] == 'i' || t[0] == 'f' || t[0] == 'c') && t.size() > 1) {
    int width = 0;
    auto [ptr, ec] = std::from_chars(t.data() + 1, t.data() + t.size(), width);
    if (ec == std::errc() && ptr == t.data() + t.size() && width > 0) {
      switch (t[0]) {
        case 'i':
          return Type::Int();
        case 'f':
          return Type::Float();
        case 'c':
          return Type::String();
      }
    }
  }
  return Status::InvalidArgument("unknown type name: " + t);
}

bool Type::Admits(const Value& v) const {
  if (v.is_null()) return true;
  if (v.type() == value_type_) return true;
  // Numeric promotion.
  return value_type_ == ValueType::kFloat && v.type() == ValueType::kInt;
}

Result<Value> Type::Coerce(const Value& v) const {
  if (v.is_null()) return v;
  if (v.type() == value_type_) return v;
  if (value_type_ == ValueType::kFloat && v.type() == ValueType::kInt) {
    return Value(static_cast<double>(v.AsInt()));
  }
  return Status::InvalidArgument(
      StringPrintf("cannot store %s value in %s attribute",
                   std::string(ValueTypeName(v.type())).c_str(),
                   std::string(name()).c_str()));
}

Result<Value> Type::ParseValue(std::string_view text) const {
  std::string_view t = Trim(text);
  if (EqualsIgnoreCase(t, "null")) return Value::Null();
  switch (value_type_) {
    case ValueType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
      if (ec != std::errc() || ptr != t.data() + t.size()) {
        return Status::InvalidArgument("bad int literal: " + std::string(t));
      }
      return Value(v);
    }
    case ValueType::kFloat: {
      // from_chars(double) is inconsistently available; strtod on a copy.
      std::string copy(t);
      char* endp = nullptr;
      double v = std::strtod(copy.c_str(), &endp);
      if (endp != copy.c_str() + copy.size() || copy.empty()) {
        return Status::InvalidArgument("bad float literal: " + copy);
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(std::string(t));
    case ValueType::kDate: {
      TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(t));
      return Value(d);
    }
    case ValueType::kBool: {
      if (EqualsIgnoreCase(t, "true")) return Value(true);
      if (EqualsIgnoreCase(t, "false")) return Value(false);
      return Status::InvalidArgument("bad bool literal: " + std::string(t));
    }
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("unhandled type in ParseValue");
}

}  // namespace temporadb
