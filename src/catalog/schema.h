#ifndef TEMPORADB_CATALOG_SCHEMA_H_
#define TEMPORADB_CATALOG_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/type.h"
#include "common/result.h"

namespace temporadb {

/// A named, typed attribute of a relation schema.
///
/// Only *explicit* attributes live in the schema.  The DBMS-maintained
/// temporal domains (valid time, transaction time) deliberately do **not**
/// appear here — per the paper (Figures 4/6/8), "the latter domains do not
/// appear in the schema for the relation, but may rather be considered part
/// of the overheads associated with each tuple."
struct Attribute {
  std::string name;
  Type type;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// An ordered list of attributes with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Validating factory: rejects duplicate or empty attribute names.
  static Result<Schema> Make(std::vector<Attribute> attributes);

  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& at(size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// Schema of a projection onto the given attribute indexes, renaming each
  /// to `names[i]` when provided.
  Schema Project(const std::vector<size_t>& indexes,
                 const std::vector<std::string>* names = nullptr) const;

  /// Concatenation (for joins); duplicate names get a "rel." prefix applied
  /// by the caller before concatenating.
  Schema Concat(const Schema& other) const;

  /// "(name: string, rank: string)".
  std::string ToString() const;

  /// Binary round-trip for the storage layer and WAL.
  void EncodeTo(std::string* out) const;
  static Result<Schema> DecodeFrom(std::string_view* in);

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace temporadb

#endif  // TEMPORADB_CATALOG_SCHEMA_H_
