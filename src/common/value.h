#ifndef TEMPORADB_COMMON_VALUE_H_
#define TEMPORADB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/date.h"
#include "common/result.h"

namespace temporadb {

/// The dynamic type of a `Value`.
///
/// `kDate` is how temporadb realizes the paper's *user-defined time* (§4.5):
/// a date-typed attribute appears in the relation schema, is parsed and
/// printed by the DBMS, but is never interpreted by the query processor's
/// temporal machinery — exactly the "internal representation and input and
/// output functions" the paper prescribes.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kFloat = 2,
  kString = 3,
  kDate = 4,
  kBool = 5,
};

std::string_view ValueTypeName(ValueType t);

/// A dynamically typed cell value.
///
/// Values are ordered within a type (NULL compares less than everything);
/// cross-type comparisons other than int/float promotion are an error at
/// analysis time, so `operator<` here is a total order used by sort/join
/// machinery.
class Value {
 public:
  /// NULL.
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}
  explicit Value(Date v) : rep_(v) {}
  explicit Value(bool v) : rep_(v) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  /// Typed accessors; calling the wrong one is a programming error
  /// (asserted).  Use `type()` to dispatch.
  int64_t AsInt() const;
  double AsFloat() const;
  const std::string& AsString() const;
  Date AsDate() const;
  bool AsBool() const;

  /// Numeric view: ints promote to double; anything else is an error.
  Result<double> AsNumeric() const;

  /// Value equality (int 3 != float 3.0 unless compared via Compare).
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order for container use: NULL < bool < int/float < string < date;
  /// int and float compare numerically against each other.
  friend bool operator<(const Value& a, const Value& b);

  /// SQL-style three-way comparison for the expression evaluator: returns
  /// InvalidArgument on incomparable types, otherwise -1/0/+1.
  static Result<int> Compare(const Value& a, const Value& b);

  /// FNV-1a hash combining type tag and payload.
  size_t Hash() const;

  /// Rendering used by result printers: strings unquoted, dates MM/DD/YY,
  /// NULL as "null".
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, Date, bool> rep_;
};

/// Hash functor for unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_VALUE_H_
