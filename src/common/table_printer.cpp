#include "common/table_printer.h"

#include <algorithm>
#include <cassert>

namespace temporadb {

void TablePrinter::AddColumn(const std::string& name) {
  groups_.push_back(ColumnGroup{name, {""}, false});
}

void TablePrinter::AddGroup(const std::string& banner,
                            const std::vector<std::string>& sub_labels,
                            bool double_bar_before) {
  assert(!sub_labels.empty());
  groups_.push_back(ColumnGroup{banner, sub_labels, double_bar_before});
}

size_t TablePrinter::num_columns() const {
  size_t n = 0;
  for (const auto& g : groups_) n += g.sub_labels.size();
  return n;
}

namespace {

std::string Pad(const std::string& s, size_t width) {
  std::string out = s;
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace

std::string TablePrinter::Render(const std::string& title) const {
  const size_t ncols = num_columns();
  // Column widths: max over sub-label and all cells.
  std::vector<size_t> width(ncols, 1);
  {
    size_t c = 0;
    for (const auto& g : groups_) {
      for (const auto& sub : g.sub_labels) {
        width[c] = std::max(width[c], sub.size());
        // Plain columns put their name in the sub row's banner position;
        // account for the banner when the group has a single column.
        if (g.sub_labels.size() == 1) {
          width[c] = std::max(width[c], g.banner.size());
        }
        ++c;
      }
    }
  }
  for (const auto& row : rows_) {
    assert(row.size() == ncols);
    for (size_t c = 0; c < ncols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  // Grouped banners may need to widen their columns so the banner fits.
  {
    size_t c = 0;
    for (const auto& g : groups_) {
      size_t span = g.sub_labels.size();
      if (span > 1) {
        size_t have = 0;
        for (size_t i = 0; i < span; ++i) have += width[c + i];
        have += 3 * (span - 1);  // " | " joiners inside the group.
        if (g.banner.size() > have) {
          width[c + span - 1] += g.banner.size() - have;
        }
      }
      c += span;
    }
  }

  auto bar_for = [&](const ColumnGroup& g, bool first) -> std::string {
    if (first) return "| ";
    return g.double_bar_before ? " || " : " | ";
  };

  // A sub-label row is needed whenever some group carries real sub-labels
  // (plain columns have a single empty sub-label).
  const bool has_banner_row =
      std::any_of(groups_.begin(), groups_.end(), [](const ColumnGroup& g) {
        return std::any_of(g.sub_labels.begin(), g.sub_labels.end(),
                           [](const std::string& s) { return !s.empty(); });
      });

  std::string out;
  if (!title.empty()) {
    out += title;
    out += "\n";
  }

  // Banner row (first header line).
  {
    std::string line;
    bool first = true;
    size_t c = 0;
    for (const auto& g : groups_) {
      line += bar_for(g, first);
      first = false;
      size_t span = g.sub_labels.size();
      size_t total = 0;
      for (size_t i = 0; i < span; ++i) total += width[c + i];
      total += 3 * (span - 1);
      line += Pad(g.banner, total);
      c += span;
    }
    line += " |";
    out += line;
    out += "\n";
  }

  // Sub-label row (second header line), only if any group is compound.
  if (has_banner_row) {
    std::string line;
    bool first = true;
    size_t c = 0;
    for (const auto& g : groups_) {
      line += bar_for(g, first);
      first = false;
      for (size_t i = 0; i < g.sub_labels.size(); ++i) {
        if (i > 0) line += " | ";
        line += Pad(g.sub_labels[i], width[c + i]);
      }
      c += g.sub_labels.size();
    }
    line += " |";
    out += line;
    out += "\n";
  }

  // Separator.
  {
    std::string line;
    bool first = true;
    size_t c = 0;
    for (const auto& g : groups_) {
      std::string bar = bar_for(g, first);
      for (char& ch : bar) {
        if (ch == ' ') ch = '-';
      }
      line += bar;
      first = false;
      for (size_t i = 0; i < g.sub_labels.size(); ++i) {
        if (i > 0) line += "-|-";
        line += std::string(width[c + i], '-');
      }
      c += g.sub_labels.size();
    }
    line += "-|";
    out += line;
    out += "\n";
  }

  // Data rows.
  for (const auto& row : rows_) {
    std::string line;
    bool first = true;
    size_t c = 0;
    for (const auto& g : groups_) {
      line += bar_for(g, first);
      first = false;
      for (size_t i = 0; i < g.sub_labels.size(); ++i) {
        if (i > 0) line += " | ";
        line += Pad(row[c + i], width[c + i]);
      }
      c += g.sub_labels.size();
    }
    line += " |";
    out += line;
    out += "\n";
  }
  return out;
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

}  // namespace temporadb
