#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace temporadb {

std::string Random::NextName(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

Zipf::Zipf(uint64_t n, double theta) : n_(n > 0 ? n : 1), theta_(theta) {
  if (theta_ <= 0.0 || n_ < 2) {
    theta_ = 0.0;
    return;
  }
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  zetan_ = zetan;
  const double zeta2 = 1.0 + std::pow(0.5, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t Zipf::Sample(Random* rng) const {
  if (theta_ <= 0.0) return rng->Uniform(n_);
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

}  // namespace temporadb
