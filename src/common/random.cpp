#include "common/random.h"

namespace temporadb {

std::string Random::NextName(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

}  // namespace temporadb
