#ifndef TEMPORADB_COMMON_RESULT_H_
#define TEMPORADB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace temporadb {

/// A value-or-Status discriminated union, analogous to `absl::StatusOr<T>` /
/// `arrow::Result<T>`.
///
/// A `Result<T>` is either OK and holds a `T`, or holds a non-OK `Status`.
/// Accessing the value of a non-OK result is a programming error (asserted
/// in debug builds).
///
/// `[[nodiscard]]` for the same reason as `Status`: a discarded result is
/// a swallowed failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if not OK.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result<T>` expression to `lhs`, returning the
/// error status from the enclosing function on failure.
///
/// ```cpp
/// TDB_ASSIGN_OR_RETURN(Schema schema, catalog.GetSchema(name));
/// ```
#define TDB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  TDB_ASSIGN_OR_RETURN_IMPL_(                                  \
      TDB_RESULT_CONCAT_(_tdb_result_, __LINE__), lhs, rexpr)

#define TDB_RESULT_CONCAT_INNER_(a, b) a##b
#define TDB_RESULT_CONCAT_(a, b) TDB_RESULT_CONCAT_INNER_(a, b)
#define TDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_RESULT_H_
