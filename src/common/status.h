#ifndef TEMPORADB_COMMON_STATUS_H_
#define TEMPORADB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace temporadb {

/// Error category for a `Status`.
///
/// temporadb follows the RocksDB/Arrow convention: no exceptions cross the
/// public API; every fallible operation returns a `Status` (or a `Result<T>`,
/// see result.h).  `kNotSupported` is load-bearing for this library: it is
/// the code returned whenever an operation violates the Snodgrass-Ahn
/// taxonomy (e.g. `as of` on a historical database, retroactive updates on a
/// static rollback database).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kNotSupported = 4,
  kOutOfRange = 5,
  kFailedPrecondition = 6,
  kCorruption = 7,
  kIOError = 8,
  kAborted = 9,
  kParseError = 10,
  kInternal = 11,
};

/// Returns a stable human-readable name, e.g. "NotSupported".
std::string_view StatusCodeName(StatusCode code);

/// The result of a fallible operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// heap message otherwise.  Typical use:
///
/// ```cpp
/// Status s = relation.Append(txn, tuple);
/// if (!s.ok()) return s;
/// ```
///
/// `[[nodiscard]]`: silently dropping a `Status` is how an I/O error or a
/// taxonomy violation turns into silent data loss.  The compiler rejects a
/// discarded status; the rare *intentional* drop (best-effort cleanup on a
/// path that is already failing) must be spelled `(void)expr;` with a
/// comment saying why ignoring it is sound.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // Messages are advisory.
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define TDB_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::temporadb::Status _tdb_status = (expr);       \
    if (!_tdb_status.ok()) return _tdb_status;      \
  } while (false)

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_STATUS_H_
