#include "common/chronon.h"

#include "common/date.h"

namespace temporadb {

std::string Chronon::ToString() const { return Date(*this).ToString(); }

}  // namespace temporadb
