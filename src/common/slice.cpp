#include "common/slice.h"

// Slice is header-only; this translation unit anchors the target.
