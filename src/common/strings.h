#ifndef TEMPORADB_COMMON_STRINGS_H_
#define TEMPORADB_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace temporadb {

/// Lower-cases ASCII; TQuel keywords are case-insensitive.
std::string ToLowerAscii(std::string_view s);

/// True if `a` and `b` are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_STRINGS_H_
