#ifndef TEMPORADB_COMMON_PERIOD_H_
#define TEMPORADB_COMMON_PERIOD_H_

#include <optional>
#include <string>

#include "common/chronon.h"

namespace temporadb {

/// The thirteen Allen interval relations.  TQuel's temporal predicates
/// (`precede`, `overlap`, `equal`) are unions of these primitives; exposing
/// the full algebra lets property tests check trichotomy/involution laws.
enum class AllenRelation {
  kBefore,        // a ends before b starts
  kMeets,         // a ends exactly where b starts
  kOverlaps,      // a starts first, they share time, b ends last
  kStarts,        // same start, a ends first
  kDuring,        // a strictly inside b
  kFinishes,      // same end, a starts later
  kEqual,         // identical
  kFinishedBy,    // inverse of kFinishes
  kContains,      // inverse of kDuring
  kStartedBy,     // inverse of kStarts
  kOverlappedBy,  // inverse of kOverlaps
  kMetBy,         // inverse of kMeets
  kAfter,         // inverse of kBefore
};

std::string_view AllenRelationName(AllenRelation r);

/// A half-open period `[begin, end)` of chronons.
///
/// Both DBMS-maintained time dimensions are periods:
///  - *transaction time* `[start, end)`: the tuple was part of the stored
///    state for transactions committing in this window; `end == Forever()`
///    means the tuple belongs to the current state (the "∞" column of
///    Figure 4);
///  - *valid time* `[from, to)`: the tuple models reality in this window
///    (Figure 6).
///
/// Half-open semantics make the paper's examples exact: Merrie is associate
/// over [09/01/77, 12/01/82) and full over [12/01/82, ∞), with no overlap
/// and no gap at the promotion chronon.
///
/// An *event* (Figure 9) is a degenerate period of exactly one chronon,
/// `[at, at.Next())`.
class Period {
 public:
  /// Default: the empty period at the epoch.
  constexpr Period() : begin_(), end_() {}

  /// `[begin, end)`. Callers must ensure `begin <= end`; `Make` validates.
  constexpr Period(Chronon begin, Chronon end) : begin_(begin), end_(end) {}

  /// Validating factory: returns nullopt when `begin > end`.
  static std::optional<Period> Make(Chronon begin, Chronon end);

  /// The whole time-line `[-inf, inf)`.
  static constexpr Period All() {
    return Period(Chronon::Beginning(), Chronon::Forever());
  }
  /// `[begin, inf)` — a fact that holds from `begin` on.
  static constexpr Period From(Chronon begin) {
    return Period(begin, Chronon::Forever());
  }
  /// A single-chronon event at `at`.
  static constexpr Period At(Chronon at) { return Period(at, at.Next()); }

  constexpr Chronon begin() const { return begin_; }
  constexpr Chronon end() const { return end_; }

  constexpr bool IsEmpty() const { return begin_ >= end_; }
  /// True when the period extends to ∞ (a "current" tuple).
  constexpr bool IsOpenEnded() const { return end_.IsForever(); }
  /// True when the period covers exactly one chronon.
  constexpr bool IsInstant() const {
    return begin_.IsFinite() && end_ == begin_.Next();
  }

  /// Number of chronons covered; saturates at `Chronon::kForeverRep` for
  /// unbounded periods (e.g. `All()`, where a raw `days()` difference
  /// would be signed-overflow UB).
  constexpr Chronon::Rep Duration() const {
    return IsEmpty() ? 0 : ChrononDistance(begin_, end_);
  }

  /// Membership: `begin <= t < end`.
  constexpr bool Contains(Chronon t) const { return begin_ <= t && t < end_; }
  /// Sub-period containment.
  constexpr bool Contains(Period other) const {
    return other.IsEmpty() || (begin_ <= other.begin_ && other.end_ <= end_);
  }

  /// TQuel `overlap`: the periods share at least one chronon.
  constexpr bool Overlaps(Period other) const {
    return !IsEmpty() && !other.IsEmpty() && begin_ < other.end_ &&
           other.begin_ < end_;
  }
  /// TQuel `precede`: this period ends at or before the other begins.
  constexpr bool Precedes(Period other) const {
    return !IsEmpty() && !other.IsEmpty() && end_ <= other.begin_;
  }
  /// Adjacency: `a.end == b.begin`.
  constexpr bool Meets(Period other) const { return end_ == other.begin_; }

  /// TQuel `a overlap b` as an *expression*: the intersection (empty if
  /// disjoint).
  Period Intersect(Period other) const;
  /// TQuel `a extend b`: the smallest period covering both.
  Period Extend(Period other) const;

  /// The Allen relation from `*this` to `other`; nullopt if either is empty
  /// (the algebra is defined on non-empty intervals only).
  std::optional<AllenRelation> AllenRelate(Period other) const;

  /// TQuel `begin of` / `end of`: degenerate periods at the endpoints.
  /// On the half-open timeline the end point is the first chronon *after*
  /// the period, so `from begin of X to end of X` reconstructs X exactly.
  constexpr Period BeginEvent() const { return Period::At(begin_); }
  constexpr Period EndEvent() const { return Period::At(end_); }
  /// The last chronon covered by the period (inclusive end).
  constexpr Period LastEvent() const { return Period::At(end_.Prev()); }

  friend constexpr bool operator==(Period a, Period b) {
    return a.begin_ == b.begin_ && a.end_ == b.end_;
  }
  friend constexpr bool operator!=(Period a, Period b) { return !(a == b); }

  /// "[09/01/77, 12/01/82)" style rendering.
  std::string ToString() const;

 private:
  Chronon begin_;
  Chronon end_;
};

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_PERIOD_H_
