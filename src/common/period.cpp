#include "common/period.h"

namespace temporadb {

std::string_view AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kEqual:
      return "equal";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kAfter:
      return "after";
  }
  return "unknown";
}

std::optional<Period> Period::Make(Chronon begin, Chronon end) {
  if (begin > end) return std::nullopt;
  return Period(begin, end);
}

Period Period::Intersect(Period other) const {
  Chronon b = MaxChronon(begin_, other.begin_);
  Chronon e = MinChronon(end_, other.end_);
  if (b >= e) return Period(b, b);  // Empty.
  return Period(b, e);
}

Period Period::Extend(Period other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  return Period(MinChronon(begin_, other.begin_),
                MaxChronon(end_, other.end_));
}

std::optional<AllenRelation> Period::AllenRelate(Period other) const {
  if (IsEmpty() || other.IsEmpty()) return std::nullopt;
  const Chronon ab = begin_, ae = end_;
  const Chronon bb = other.begin_, be = other.end_;
  if (ae < bb) return AllenRelation::kBefore;
  if (ae == bb) return AllenRelation::kMeets;
  if (bb < ab && be < ae) {
    // b started first; does it end inside a or is a inside b? Handled below
    // via the inverse relations; fall through.
  }
  if (ab == bb && ae == be) return AllenRelation::kEqual;
  if (ab == bb) return ae < be ? AllenRelation::kStarts
                               : AllenRelation::kStartedBy;
  if (ae == be) return ab > bb ? AllenRelation::kFinishes
                               : AllenRelation::kFinishedBy;
  if (bb < ab && ae < be) return AllenRelation::kDuring;
  if (ab < bb && be < ae) return AllenRelation::kContains;
  if (ab < bb && bb < ae && ae < be) return AllenRelation::kOverlaps;
  if (bb < ab && ab < be && be < ae) return AllenRelation::kOverlappedBy;
  if (be == ab) return AllenRelation::kMetBy;
  return AllenRelation::kAfter;
}

std::string Period::ToString() const {
  return "[" + begin_.ToString() + ", " + end_.ToString() + ")";
}

}  // namespace temporadb
