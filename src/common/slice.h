#ifndef TEMPORADB_COMMON_SLICE_H_
#define TEMPORADB_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace temporadb {

/// A non-owning view of a byte range, in the RocksDB tradition.
///
/// The storage layer traffics in `Slice`s so that tuple encode/decode never
/// copies page bytes until a `Value` is materialized.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  /* implicit */ Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(s.data()), size_(s.size()) {}
  /* implicit */ Slice(std::string_view s)  // NOLINT(runtime/explicit)
      : data_(s.data()), size_(s.size()) {}
  /* implicit */ Slice(const char* s)  // NOLINT(runtime/explicit)
      : data_(s), size_(std::strlen(s)) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first `n` bytes (caller guarantees `n <= size()`).
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  friend bool operator==(Slice a, Slice b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(Slice a, Slice b) { return !(a == b); }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_SLICE_H_
