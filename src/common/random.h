#ifndef TEMPORADB_COMMON_RANDOM_H_
#define TEMPORADB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace temporadb {

/// Deterministic xorshift64* generator for workload generators and property
/// tests.  Not cryptographic; seeded runs are fully reproducible, which the
/// benchmark harness relies on for stable figures.
class Random {
 public:
  explicit Random(uint64_t seed = 0x5AD5AD5AD5AD5ADULL)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability `p_percent`/100.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

  /// Random lowercase identifier of the given length.
  std::string NextName(size_t length);

 private:
  uint64_t state_;
};

/// Zipf-distributed rank sampler over [0, n) with skew `theta` in [0, 1)
/// (the YCSB / Gray et al. rejection-free formulation).  Rank 0 is the
/// hottest key; `theta = 0` degenerates to uniform and `theta ≈ 0.99` is
/// the classic hot-key skew.  Construction is O(n) (harmonic-sum
/// precomputation); `Sample` is O(1) and consumes exactly one draw from
/// the passed generator, so seeded streams stay reproducible.
class Zipf {
 public:
  Zipf(uint64_t n, double theta);

  uint64_t Sample(Random* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_ = 1;
  double theta_ = 0.0;
  double zetan_ = 1.0;   // Generalized harmonic number H_{n,theta}.
  double alpha_ = 0.0;   // 1 / (1 - theta).
  double eta_ = 0.0;
};

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_RANDOM_H_
