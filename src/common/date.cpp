#include "common/date.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace temporadb {

namespace calendar {

namespace {

constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeap(int year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

}  // namespace

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;                                    // [0, 365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;        // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;             // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool IsValidYmd(int year, int month, int day) {
  if (month < 1 || month > 12) return false;
  if (day < 1) return false;
  int max_day = kDaysInMonth[month - 1];
  if (month == 2 && IsLeap(year)) max_day = 29;
  return day <= max_day;
}

}  // namespace calendar

Result<Date> Date::FromYmd(int year, int month, int day) {
  if (!calendar::IsValidYmd(year, month, day)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "invalid date %04d-%02d-%02d", year, month,
                  day);
    return Status::InvalidArgument(buf);
  }
  return Date(Chronon(calendar::DaysFromCivil(year, month, day)));
}

namespace {

bool ParseInt(std::string_view text, int* out) {
  if (text.empty()) return false;
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

Result<Date> Date::Parse(std::string_view text) {
  // Trim surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  if (text.empty()) return Status::InvalidArgument("empty date string");

  if (text == "inf" || text == "forever" || text == "\xe2\x88\x9e") {
    return Date::Forever();
  }
  if (text == "-inf" || text == "beginning") {
    return Date::Beginning();
  }

  // ISO "YYYY-MM-DD".
  if (text.size() == 10 && text[4] == '-' && text[7] == '-') {
    int y, m, d;
    if (ParseInt(text.substr(0, 4), &y) && ParseInt(text.substr(5, 2), &m) &&
        ParseInt(text.substr(8, 2), &d)) {
      return FromYmd(y, m, d);
    }
    return Status::InvalidArgument("malformed ISO date: " + std::string(text));
  }

  // Paper-style "MM/DD/YY" or "MM/DD/YYYY".
  size_t s1 = text.find('/');
  size_t s2 = (s1 == std::string_view::npos) ? std::string_view::npos
                                             : text.find('/', s1 + 1);
  if (s1 != std::string_view::npos && s2 != std::string_view::npos) {
    int m, d, y;
    if (ParseInt(text.substr(0, s1), &m) &&
        ParseInt(text.substr(s1 + 1, s2 - s1 - 1), &d) &&
        ParseInt(text.substr(s2 + 1), &y)) {
      size_t ylen = text.size() - s2 - 1;
      if (ylen <= 2) y += 1900;  // The paper's examples: "82" means 1982.
      return FromYmd(y, m, d);
    }
  }
  return Status::InvalidArgument("unrecognized date format: " +
                                 std::string(text));
}

int Date::year() const {
  int y, m, d;
  calendar::CivilFromDays(chronon_.days(), &y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  calendar::CivilFromDays(chronon_.days(), &y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  calendar::CivilFromDays(chronon_.days(), &y, &m, &d);
  return d;
}

std::string Date::ToString() const {
  if (IsForever()) return "inf";
  if (IsBeginning()) return "-inf";
  int y, m, d;
  calendar::CivilFromDays(chronon_.days(), &y, &m, &d);
  char buf[32];
  if (y >= 1900 && y <= 1999) {
    std::snprintf(buf, sizeof(buf), "%02d/%02d/%02d", m, d, y - 1900);
  } else {
    std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d", m, d, y);
  }
  return buf;
}

std::string Date::ToIsoString() const {
  if (IsForever()) return "inf";
  if (IsBeginning()) return "-inf";
  int y, m, d;
  calendar::CivilFromDays(chronon_.days(), &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace temporadb
