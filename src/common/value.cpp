#include "common/value.h"

#include <cassert>
#include <cstdio>
#include <functional>

namespace temporadb {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kFloat:
      return "float";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
    case ValueType::kBool:
      return "bool";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kFloat;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kDate;
    case 5:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt() const {
  assert(std::holds_alternative<int64_t>(rep_));
  return std::get<int64_t>(rep_);
}

double Value::AsFloat() const {
  assert(std::holds_alternative<double>(rep_));
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  assert(std::holds_alternative<std::string>(rep_));
  return std::get<std::string>(rep_);
}

Date Value::AsDate() const {
  assert(std::holds_alternative<Date>(rep_));
  return std::get<Date>(rep_);
}

bool Value::AsBool() const {
  assert(std::holds_alternative<bool>(rep_));
  return std::get<bool>(rep_);
}

Result<double> Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kFloat:
      return AsFloat();
    default:
      return Status::InvalidArgument(std::string("value of type ") +
                                     std::string(ValueTypeName(type())) +
                                     " is not numeric");
  }
}

namespace {

// Rank for the cross-type total order.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kFloat:
      return 2;
    case ValueType::kString:
      return 3;
    case ValueType::kDate:
      return 4;
  }
  return 5;
}

}  // namespace

bool operator<(const Value& a, const Value& b) {
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb;
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return a.AsBool() < b.AsBool();
    case ValueType::kInt:
    case ValueType::kFloat: {
      double x = a.type() == ValueType::kInt ? static_cast<double>(a.AsInt())
                                             : a.AsFloat();
      double y = b.type() == ValueType::kInt ? static_cast<double>(b.AsInt())
                                             : b.AsFloat();
      return x < y;
    }
    case ValueType::kString:
      return a.AsString() < b.AsString();
    case ValueType::kDate:
      return a.AsDate() < b.AsDate();
  }
  return false;
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  ValueType ta = a.type(), tb = b.type();
  bool numeric = (ta == ValueType::kInt || ta == ValueType::kFloat) &&
                 (tb == ValueType::kInt || tb == ValueType::kFloat);
  if (ta != tb && !numeric) {
    return Status::InvalidArgument(
        std::string("cannot compare ") + std::string(ValueTypeName(ta)) +
        " with " + std::string(ValueTypeName(tb)));
  }
  if (numeric) {
    double x = ta == ValueType::kInt ? static_cast<double>(a.AsInt())
                                     : a.AsFloat();
    double y = tb == ValueType::kInt ? static_cast<double>(b.AsInt())
                                     : b.AsFloat();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  switch (ta) {
    case ValueType::kBool:
      return a.AsBool() == b.AsBool() ? 0 : (a.AsBool() < b.AsBool() ? -1 : 1);
    case ValueType::kString: {
      int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kDate:
      return a.AsDate() == b.AsDate() ? 0 : (a.AsDate() < b.AsDate() ? -1 : 1);
    default:
      return Status::Internal("unhandled comparison type");
  }
}

size_t Value::Hash() const {
  constexpr size_t kFnvOffset = 1469598103934665603ULL;
  constexpr size_t kFnvPrime = 1099511628211ULL;
  auto mix = [](size_t h, uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xff;
      h *= kFnvPrime;
    }
    return h;
  };
  size_t h = kFnvOffset;
  h = mix(h, static_cast<uint64_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      h = mix(h, AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      h = mix(h, static_cast<uint64_t>(AsInt()));
      break;
    case ValueType::kFloat: {
      double d = AsFloat();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      h = mix(h, bits);
      break;
    }
    case ValueType::kString:
      for (char c : AsString()) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
      }
      break;
    case ValueType::kDate:
      h = mix(h, static_cast<uint64_t>(AsDate().chronon().days()));
      break;
  }
  return h;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kFloat: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", AsFloat());
      return buf;
    }
    case ValueType::kString:
      return AsString();
    case ValueType::kDate:
      return AsDate().ToString();
  }
  return "?";
}

}  // namespace temporadb
