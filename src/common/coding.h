#ifndef TEMPORADB_COMMON_CODING_H_
#define TEMPORADB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace temporadb {

/// Little-endian fixed-width primitives and length-prefixed strings, in the
/// RocksDB coding.h tradition.  The Get* functions consume from a
/// string_view cursor and return false on underflow (treated as corruption
/// by callers).

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);  // Little-endian hosts only (asserted in pager).
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline bool GetFixed32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

inline bool GetLengthPrefixed(std::string_view* in, std::string_view* out) {
  uint32_t len;
  if (!GetFixed32(in, &len)) return false;
  if (in->size() < len) return false;
  *out = in->substr(0, len);
  in->remove_prefix(len);
  return true;
}

/// FNV-1a over a byte range; used as the page and WAL-record checksum.
inline uint64_t Checksum64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_CODING_H_
