#ifndef TEMPORADB_COMMON_THREAD_ANNOTATIONS_H_
#define TEMPORADB_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis support (-Wthread-safety), plus annotated
// mutex/condition-variable wrappers over the standard library.
//
// temporadb's concurrency correctness rests on lock discipline in exactly
// two places — the morsel scheduler (`exec::ThreadPool`) and the WAL
// group-commit queue (`CommitQueue`) — and on a *single-writer* contract
// everywhere else (the embedded Database, its version stores, and the
// pager stack are externally synchronized; parallel scans only ever read
// under a captured mutation epoch, see version_store.h).  TSAN checks the
// lock discipline dynamically, on the interleavings a test happens to hit;
// these annotations let the clang frontend prove it on every build:
//
//   cmake -B build -S . -DTDB_ANALYZE=ON  # clang only; -Wthread-safety -Werror
//
// Every mutex in the tree must be a `Mutex` from this header, declared
// with `TDB_GUARDED_BY` on each member it protects; `tools/tdb_lint.py`
// rejects bare `std::mutex` / `std::lock_guard` / `std::unique_lock` /
// `std::condition_variable` outside this file, so the analysis cannot be
// bypassed by accident.
//
// The macro set mirrors the standard vocabulary (Abseil, LevelDB ports):
// under compilers without the capability attributes (GCC) every macro
// expands to nothing and the wrappers degrade to zero-cost shims over
// `std::mutex`.

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TDB_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TDB_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a class to be a lockable capability ("mutex").
#define TDB_CAPABILITY(x) TDB_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define TDB_SCOPED_CAPABILITY TDB_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The annotated member may only be accessed while holding `x`.
#define TDB_GUARDED_BY(x) TDB_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The annotated pointer may be dereferenced only while holding `x`.
#define TDB_PT_GUARDED_BY(x) TDB_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The calling thread must hold `...` to call the annotated function.
#define TDB_REQUIRES(...) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define TDB_ACQUIRE(...) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define TDB_RELEASE(...) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The caller must NOT hold `...` (deadlock prevention: the function
/// acquires it itself, or acquires something ordered before it).
#define TDB_EXCLUDES(...) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Global lock-ordering declarations (DESIGN.md §11).  Checked by clang
/// under `-Wthread-safety-beta`; under plain `-Wthread-safety` they are
/// accepted and serve as machine-readable documentation.
#define TDB_ACQUIRED_BEFORE(...) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define TDB_ACQUIRED_AFTER(...) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function returns a reference to the capability `x`.
#define TDB_RETURN_CAPABILITY(x) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Asserts (to the analysis) that the capability is held.
#define TDB_ASSERT_CAPABILITY(x) \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Escape hatch: disables analysis of one function.  Every use must carry
/// a comment explaining why the analysis cannot see the invariant.
#define TDB_NO_THREAD_SAFETY_ANALYSIS \
  TDB_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace temporadb {

class CondVar;

/// An annotated mutex.  Functionally `std::mutex`; the capability
/// attribute is what lets clang track which locks protect which members.
class TDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TDB_ACQUIRE() { mu_.lock(); }
  void Unlock() TDB_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over `Mutex` — the only sanctioned way to hold one for a
/// scope.  Supports mid-scope `Unlock`/`Lock` pairs for the drop-the-lock-
/// around-I/O pattern (the group-commit leader, a worker draining morsels);
/// the destructor releases only if still held.
class TDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TDB_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() TDB_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before scope end (e.g. to perform I/O).
  void Unlock() TDB_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  /// Reacquires after a mid-scope `Unlock`.
  void Lock() TDB_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

/// Condition variable bound to a `Mutex` (LevelDB-port style).
///
/// `Wait` must be called with the mutex held; it atomically releases the
/// mutex while blocked and reacquires it before returning.  The analysis
/// treats the capability as held across the call — which is exactly the
/// invariant guarded members rely on: they may only be *observed* with the
/// lock held, and `Wait` never returns without it.  Callers therefore use
/// the classic `while (!predicate()) cv.Wait();` shape rather than the
/// `std::condition_variable` predicate overload (a lambda would escape the
/// analysis).
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified.  The associated mutex must be held.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_THREAD_ANNOTATIONS_H_
