#ifndef TEMPORADB_COMMON_CHECK_H_
#define TEMPORADB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace temporadb {
namespace internal {

[[noreturn]] inline void InvariantFailure(const char* file, int line,
                                          const char* expr, const char* msg) {
  std::fprintf(stderr, "temporadb invariant violated at %s:%d: %s\n  %s\n",
               file, line, expr, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace temporadb

/// Always-on invariant check for cross-thread / cross-commit contracts.
///
/// Unlike `assert`, this never compiles out: a violated invariant aborts in
/// release builds too, with the failing expression and an explanation.  Use
/// it wherever a silently-false condition would produce *wrong data* rather
/// than a crash — e.g. a scan observing a version store that mutated under
/// it would silently dereference stale state in an NDEBUG build if guarded
/// by a bare `assert`.  `tools/tdb_lint.py` (rule 5, invariant-check)
/// enforces this helper over bare asserts for such conditions in the
/// concurrent layers (src/temporal, src/exec).
#define TDB_INVARIANT_CHECK(cond, msg)                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::temporadb::internal::InvariantFailure(__FILE__, __LINE__,     \
                                              #cond, msg);            \
    }                                                                 \
  } while (0)

#endif  // TEMPORADB_COMMON_CHECK_H_
