#ifndef TEMPORADB_COMMON_INLINE_FUNCTION_H_
#define TEMPORADB_COMMON_INLINE_FUNCTION_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace temporadb {

/// A small-buffer-optimized `std::function` replacement for hot loops.
///
/// `std::function` hides every callable behind a type-erased heap object,
/// so a per-row predicate costs an indirect call through two pointers plus
/// (on construction) an allocation.  `InlineFunction` stores callables up
/// to `InlineBytes` directly in the object, keeping the captured state on
/// the same cache line as the dispatch pointer; larger callables fall back
/// to the heap transparently.  The version-store scan loop invokes its
/// filter once per version, which is what motivates this type (see
/// `VersionFilter`).
///
/// Requirements on the wrapped callable `F`:
///  - `R operator()(Args...) const` (const-invocable, like a non-mutable
///    lambda);
///  - copy-constructible (InlineFunction itself is copyable).
///
/// Invocation through `operator()` is const and touches no mutable state in
/// the wrapper, so one InlineFunction may be invoked concurrently from many
/// threads iff the wrapped callable itself is safe to invoke concurrently.
template <typename Signature, size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT: implicit, like std::function.

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, const std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit, like std::function.
    using D = std::decay_t<F>;
    if constexpr (Inlined<D>()) {
      ::new (storage_.inline_buf) D(std::forward<F>(f));
    } else {
      storage_.heap = new D(std::forward<F>(f));
    }
    vtable_ = &kVTable<D>;
  }

  InlineFunction(const InlineFunction& other) : vtable_(other.vtable_) {
    if (vtable_ != nullptr) vtable_->copy(storage_, other.storage_);
  }

  InlineFunction(InlineFunction&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->move(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  InlineFunction& operator=(const InlineFunction& other) {
    if (this != &other) {
      Reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) vtable_->copy(storage_, other.storage_);
    }
    return *this;
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->move(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) const {
    assert(vtable_ != nullptr && "invoking an empty InlineFunction");
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  union Storage {
    alignas(std::max_align_t) unsigned char inline_buf[InlineBytes];
    void* heap;
  };

  struct VTable {
    R (*invoke)(const Storage&, Args&&...);
    void (*copy)(Storage& dst, const Storage& src);
    void (*move)(Storage& dst, Storage& src) noexcept;
    void (*destroy)(Storage&) noexcept;
  };

  template <typename D>
  static constexpr bool Inlined() {
    return sizeof(D) <= InlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static const D* Object(const Storage& s) {
    if constexpr (Inlined<D>()) {
      return std::launder(reinterpret_cast<const D*>(s.inline_buf));
    } else {
      return static_cast<const D*>(s.heap);
    }
  }

  template <typename D>
  static D* Object(Storage& s) {
    return const_cast<D*>(Object<D>(static_cast<const Storage&>(s)));
  }

  template <typename D>
  static constexpr VTable MakeVTable() {
    return VTable{
        /*invoke=*/[](const Storage& s, Args&&... args) -> R {
          return (*Object<D>(s))(std::forward<Args>(args)...);
        },
        /*copy=*/[](Storage& dst, const Storage& src) {
          if constexpr (Inlined<D>()) {
            ::new (dst.inline_buf) D(*Object<D>(src));
          } else {
            dst.heap = new D(*Object<D>(src));
          }
        },
        /*move=*/[](Storage& dst, Storage& src) noexcept {
          if constexpr (Inlined<D>()) {
            ::new (dst.inline_buf) D(std::move(*Object<D>(src)));
            Object<D>(src)->~D();
          } else {
            dst.heap = src.heap;
            src.heap = nullptr;
          }
        },
        /*destroy=*/[](Storage& s) noexcept {
          if constexpr (Inlined<D>()) {
            Object<D>(s)->~D();
          } else {
            delete Object<D>(s);
          }
        },
    };
  }

  template <typename D>
  static constexpr VTable kVTable = MakeVTable<D>();

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  Storage storage_;
};

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_INLINE_FUNCTION_H_
