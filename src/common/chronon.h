#ifndef TEMPORADB_COMMON_CHRONON_H_
#define TEMPORADB_COMMON_CHRONON_H_

#include <cstdint>
#include <limits>
#include <string>

namespace temporadb {

/// A point on the database's discrete time-line.
///
/// Following the temporal-database literature, the time-line is a sequence
/// of indivisible *chronons*.  temporadb's chronon is one day (the paper
/// timestamps all of its examples at day granularity, e.g. "12/15/82"), and
/// a `Chronon` is a signed day count relative to the Unix epoch
/// (1970-01-01 = chronon 0) over the proleptic Gregorian calendar.
///
/// Two sentinel values bound the line:
///  - `kForever`   — the paper's "∞": a period that has not ended, i.e. the
///    current version of a tuple (transaction-time end) or a fact that is
///    still true (valid-time end);
///  - `kBeginning` — "-∞", before all representable time.
///
/// Both transaction time and valid time are measured in chronons; they
/// differ in *semantics* (representation vs. reality), not representation.
class Chronon {
 public:
  using Rep = int64_t;

  static constexpr Rep kForeverRep = std::numeric_limits<Rep>::max();
  static constexpr Rep kBeginningRep = std::numeric_limits<Rep>::min();

  /// Default-constructs chronon 0 (the epoch).
  constexpr Chronon() : rep_(0) {}
  constexpr explicit Chronon(Rep days) : rep_(days) {}

  /// The paper's "∞": after all finite time.
  static constexpr Chronon Forever() { return Chronon(kForeverRep); }
  /// Before all finite time.
  static constexpr Chronon Beginning() { return Chronon(kBeginningRep); }
  static constexpr Chronon Epoch() { return Chronon(0); }

  constexpr Rep days() const { return rep_; }
  constexpr bool IsForever() const { return rep_ == kForeverRep; }
  constexpr bool IsBeginning() const { return rep_ == kBeginningRep; }
  constexpr bool IsFinite() const { return !IsForever() && !IsBeginning(); }

  /// The next chronon.  Saturates at the sentinels: the successor of
  /// `Forever()` is `Forever()`.
  constexpr Chronon Next() const {
    if (!IsFinite()) return *this;
    return Chronon(rep_ + 1);
  }
  /// The previous chronon, saturating at the sentinels.
  constexpr Chronon Prev() const {
    if (!IsFinite()) return *this;
    return Chronon(rep_ - 1);
  }

  friend constexpr bool operator==(Chronon a, Chronon b) {
    return a.rep_ == b.rep_;
  }
  friend constexpr bool operator!=(Chronon a, Chronon b) {
    return a.rep_ != b.rep_;
  }
  friend constexpr bool operator<(Chronon a, Chronon b) {
    return a.rep_ < b.rep_;
  }
  friend constexpr bool operator<=(Chronon a, Chronon b) {
    return a.rep_ <= b.rep_;
  }
  friend constexpr bool operator>(Chronon a, Chronon b) {
    return a.rep_ > b.rep_;
  }
  friend constexpr bool operator>=(Chronon a, Chronon b) {
    return a.rep_ >= b.rep_;
  }

  /// The largest / smallest representable *finite* chronon.  Finite
  /// arithmetic saturates here rather than at the sentinels: a finite
  /// instant pushed off the end of the line must stay a finite instant,
  /// never silently become "∞" / "-∞" (which carry distinct semantics —
  /// "still current" / "before all time" — throughout the engine).
  static constexpr Chronon MaxFinite() { return Chronon(kForeverRep - 1); }
  static constexpr Chronon MinFinite() { return Chronon(kBeginningRep + 1); }

  /// Chronon arithmetic.  Sentinels are absorbing; finite operands saturate
  /// at `MaxFinite()` / `MinFinite()` instead of overflowing (signed
  /// overflow is UB) or landing on a sentinel representation.
  friend constexpr Chronon operator+(Chronon c, Rep days) {
    if (!c.IsFinite()) return c;
    Rep sum = 0;
    if (__builtin_add_overflow(c.rep_, days, &sum)) {
      return days > 0 ? MaxFinite() : MinFinite();
    }
    if (sum == kForeverRep) return MaxFinite();
    if (sum == kBeginningRep) return MinFinite();
    return Chronon(sum);
  }
  friend constexpr Chronon operator-(Chronon c, Rep days) {
    if (!c.IsFinite()) return c;
    Rep diff = 0;
    if (__builtin_sub_overflow(c.rep_, days, &diff)) {
      return days < 0 ? MaxFinite() : MinFinite();
    }
    if (diff == kForeverRep) return MaxFinite();
    if (diff == kBeginningRep) return MinFinite();
    return Chronon(diff);
  }

  /// Day-granularity calendar rendering; "forever" for ∞.  See date.h for
  /// the calendar logic.
  std::string ToString() const;

 private:
  Rep rep_;
};

/// Returns the earlier / later of two chronons.
constexpr Chronon MinChronon(Chronon a, Chronon b) { return a < b ? a : b; }
constexpr Chronon MaxChronon(Chronon a, Chronon b) { return a < b ? b : a; }

/// Signed distance `to - from` in chronons, saturating at the `Rep` range
/// instead of overflowing — `Forever() - Beginning()` is not representable,
/// and a naive `days()` difference there is signed-overflow UB.  This is
/// the sanctioned home for chronon differencing: call it instead of
/// subtracting `days()` values at a use site.
constexpr Chronon::Rep ChrononDistance(Chronon from, Chronon to) {
  Chronon::Rep diff = 0;
  if (__builtin_sub_overflow(to.days(), from.days(), &diff)) {
    return to.days() >= from.days() ? Chronon::kForeverRep
                                    : Chronon::kBeginningRep;
  }
  return diff;
}

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_CHRONON_H_
