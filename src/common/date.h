#ifndef TEMPORADB_COMMON_DATE_H_
#define TEMPORADB_COMMON_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/chronon.h"
#include "common/result.h"

namespace temporadb {

/// A calendar date: the human-readable face of a `Chronon`.
///
/// Dates serve two roles in temporadb, mirroring the paper:
///  1. the rendering of the DBMS-maintained transaction-time and valid-time
///     chronons (Figures 4, 6, 8);
///  2. *user-defined time* (§4.5): an ordinary schema attribute of date type
///     that the DBMS stores and formats but does not interpret (the
///     "effective date" of Figure 9).
///
/// The canonical text format is the paper's `MM/DD/YY` (two-digit years are
/// 19YY, matching the 1977-1984 examples); ISO `YYYY-MM-DD` and four-digit
/// `MM/DD/YYYY` are also accepted on input.  The sentinels render as the
/// paper's "∞" (as "inf") and "-inf".
class Date {
 public:
  /// Default-constructs the epoch date 01/01/70.
  constexpr Date() : chronon_() {}
  constexpr explicit Date(Chronon c) : chronon_(c) {}

  /// Builds a date from civil year/month/day (proleptic Gregorian).
  /// Returns InvalidArgument for out-of-range months/days.
  static Result<Date> FromYmd(int year, int month, int day);

  /// Parses "MM/DD/YY", "MM/DD/YYYY", or "YYYY-MM-DD".  "inf", "forever"
  /// and the UTF-8 infinity sign parse to `Forever()`.
  static Result<Date> Parse(std::string_view text);

  static constexpr Date Forever() { return Date(Chronon::Forever()); }
  static constexpr Date Beginning() { return Date(Chronon::Beginning()); }

  constexpr Chronon chronon() const { return chronon_; }
  constexpr bool IsForever() const { return chronon_.IsForever(); }
  constexpr bool IsBeginning() const { return chronon_.IsBeginning(); }
  constexpr bool IsFinite() const { return chronon_.IsFinite(); }

  /// Civil components; only meaningful for finite dates.
  int year() const;
  int month() const;
  int day() const;

  /// Paper-style "MM/DD/YY"; "inf" / "-inf" for the sentinels.  Years
  /// outside [1900, 1999] render as "MM/DD/YYYY" to stay unambiguous.
  std::string ToString() const;
  /// ISO "YYYY-MM-DD".
  std::string ToIsoString() const;

  friend constexpr bool operator==(Date a, Date b) {
    return a.chronon_ == b.chronon_;
  }
  friend constexpr bool operator!=(Date a, Date b) {
    return a.chronon_ != b.chronon_;
  }
  friend constexpr bool operator<(Date a, Date b) {
    return a.chronon_ < b.chronon_;
  }
  friend constexpr bool operator<=(Date a, Date b) {
    return a.chronon_ <= b.chronon_;
  }
  friend constexpr bool operator>(Date a, Date b) {
    return a.chronon_ > b.chronon_;
  }
  friend constexpr bool operator>=(Date a, Date b) {
    return a.chronon_ >= b.chronon_;
  }

 private:
  Chronon chronon_;
};

namespace calendar {

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of `DaysFromCivil`.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// True if `year`/`month`/`day` is a real proleptic-Gregorian date.
bool IsValidYmd(int year, int month, int day);

}  // namespace calendar

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_DATE_H_
