#ifndef TEMPORADB_COMMON_TABLE_PRINTER_H_
#define TEMPORADB_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace temporadb {

/// Renders ASCII tables in the visual style of the paper's figures.
///
/// The paper's relation figures have a two-level header: explicit attributes
/// are separated from the DBMS-maintained temporal columns by a double bar
/// (`||`), and the temporal columns are grouped under "valid time" /
/// "transaction time" banners with "(from)/(to)" and "(start)/(end)"
/// sub-labels.  `TablePrinter` reproduces that layout:
///
/// ```
/// | name   | rank      || valid time          || transaction time    |
/// |        |           || (from)   | (to)     || (start)  | (end)    |
/// |--------|-----------||----------|----------||----------|----------|
/// | Merrie | associate || 09/01/77 | 12/01/82 || 08/25/77 | inf      |
/// ```
class TablePrinter {
 public:
  /// A column group: a banner spanning `sub_labels.size()` columns.  A group
  /// with an empty banner and one empty sub-label renders as a plain column.
  struct ColumnGroup {
    std::string banner;                   // e.g. "valid time"; "" for plain.
    std::vector<std::string> sub_labels;  // e.g. {"(from)", "(to)"}.
    bool double_bar_before = false;       // The paper's "||" separator.
  };

  /// Convenience: adds a plain (ungrouped) column titled `name`.
  void AddColumn(const std::string& name);

  /// Adds a banner group spanning several sub-labelled columns.
  void AddGroup(const std::string& banner,
                const std::vector<std::string>& sub_labels,
                bool double_bar_before = true);

  /// Appends a data row; must have as many cells as total columns.
  void AddRow(std::vector<std::string> cells);

  /// Total number of data columns across all groups.
  size_t num_columns() const;

  /// Renders the table; `title`, when non-empty, is printed above it.
  std::string Render(const std::string& title = "") const;

 private:
  std::vector<ColumnGroup> groups_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace temporadb

#endif  // TEMPORADB_COMMON_TABLE_PRINTER_H_
