#include "txn/clock.h"

#include <ctime>

namespace temporadb {

Chronon SystemClock::Now() const {
  std::time_t seconds = std::time(nullptr);
  // Unix time / 86400 is exactly the day count since 1970-01-01.
  return Chronon(static_cast<Chronon::Rep>(seconds / 86400));
}

Status ManualClock::SetDate(std::string_view text) {
  TDB_ASSIGN_OR_RETURN(Date d, Date::Parse(text));
  now_ = d.chronon();
  return Status::OK();
}

}  // namespace temporadb
