#include "txn/transaction.h"

namespace temporadb {

std::string_view TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kActive:
      return "active";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kAborted:
      return "aborted";
  }
  return "unknown";
}

void Transaction::PushUndo(std::function<void()> undo) {
  undo_log_.push_back(std::move(undo));
}

void Transaction::RunUndoAndMarkAborted() {
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    (*it)();
  }
  undo_log_.clear();
  state_ = TxnState::kAborted;
}

}  // namespace temporadb
