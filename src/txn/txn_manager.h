#ifndef TEMPORADB_TXN_TXN_MANAGER_H_
#define TEMPORADB_TXN_TXN_MANAGER_H_

#include <memory>

#include "common/result.h"
#include "txn/clock.h"
#include "txn/transaction.h"

namespace temporadb {

/// Creates, commits, and aborts transactions; owns the monotonic clamp on
/// transaction timestamps.
///
/// Append-only discipline (the paper's §2.2 / Figure 12: transaction time is
/// append-only and application-independent) is enforced in two places:
///  1. here — timestamps are issued by the DBMS clock, never accepted from
///     the user, and never decrease even if the underlying clock jumps
///     backwards;
///  2. in the relation kinds — committed versions' transaction periods are
///     immutable.
///
/// Threading contract: externally synchronized, single writer — one active
/// transaction at a time, driven by the owning `Database` (see DESIGN.md
/// §11.1).  Concurrent *commit durability* is the WAL `CommitQueue`'s job,
/// not this class's.
class TxnManager {
 public:
  /// `clock` must outlive the manager.
  explicit TxnManager(const Clock* clock) : clock_(clock) {}

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Starts a transaction stamped with `max(clock->Now(), last issued)`.
  /// Only one transaction may be active at a time (embedded-library model);
  /// FailedPrecondition otherwise.
  Result<Transaction*> Begin();

  /// Commits the active transaction.
  Status Commit(Transaction* txn);

  /// Aborts the active transaction, running its undo log.
  Status Abort(Transaction* txn);

  /// The timestamp the *next* transaction would receive; used to interpret
  /// "now" in queries.
  Chronon Now() const;

  /// Timestamp of the most recently committed transaction (Beginning() if
  /// none yet).
  Chronon last_commit() const { return last_commit_; }

  /// Recovery hook: ensures future timestamps do not fall behind a
  /// timestamp observed in the redo log.  Non-finite observations are
  /// ignored — admitting one would poison `last_issued_` and disable the
  /// monotone clamp for every later transaction.
  void ObserveRecoveredTimestamp(Chronon t) {
    if (t.IsFinite() && t > last_issued_) last_issued_ = t;
  }

  uint64_t committed_count() const { return committed_count_; }
  uint64_t aborted_count() const { return aborted_count_; }

 private:
  /// `clock_->Now()` clamped into monotone, finite transaction time: a
  /// regressing clock yields `last_issued_`, a clock pinned at ±∞ yields
  /// the last issued finite instant (or the epoch before any was issued).
  Chronon MonotoneNow() const;

  const Clock* clock_;
  std::unique_ptr<Transaction> active_;
  TxnId next_id_ = 1;
  Chronon last_issued_ = Chronon::Beginning();
  Chronon last_commit_ = Chronon::Beginning();
  uint64_t committed_count_ = 0;
  uint64_t aborted_count_ = 0;
};

}  // namespace temporadb

#endif  // TEMPORADB_TXN_TXN_MANAGER_H_
