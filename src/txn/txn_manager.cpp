#include "txn/txn_manager.h"

namespace temporadb {

Result<Transaction*> TxnManager::Begin() {
  if (active_ != nullptr && active_->IsActive()) {
    return Status::FailedPrecondition(
        "a transaction is already active; temporadb transactions are "
        "serialized");
  }
  Chronon now = clock_->Now();
  // Monotonic clamp: transaction time never runs backwards even if the
  // clock does.
  if (last_issued_.IsFinite() && now < last_issued_) {
    now = last_issued_;
  }
  last_issued_ = now;
  active_ = std::make_unique<Transaction>(next_id_++, now);
  return active_.get();
}

Status TxnManager::Commit(Transaction* txn) {
  if (txn == nullptr || txn != active_.get()) {
    return Status::InvalidArgument("commit of a non-active transaction");
  }
  if (!txn->IsActive()) {
    return Status::FailedPrecondition("transaction is not active");
  }
  txn->MarkCommitted();
  last_commit_ = txn->timestamp();
  ++committed_count_;
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  if (txn == nullptr || txn != active_.get()) {
    return Status::InvalidArgument("abort of a non-active transaction");
  }
  if (!txn->IsActive()) {
    return Status::FailedPrecondition("transaction is not active");
  }
  txn->RunUndoAndMarkAborted();
  ++aborted_count_;
  return Status::OK();
}

Chronon TxnManager::Now() const {
  Chronon now = clock_->Now();
  if (last_issued_.IsFinite() && now < last_issued_) now = last_issued_;
  return now;
}

}  // namespace temporadb
