#include "txn/txn_manager.h"

namespace temporadb {

Chronon TxnManager::MonotoneNow() const {
  Chronon now = clock_->Now();
  // A clock pinned at ±∞ cannot stamp trustworthy transaction time, and a
  // non-finite `last_issued_` would permanently disable the monotone clamp
  // below (transaction time is append-only, §2.2 — once issued, timestamps
  // may never regress).  Fall back to the last issued finite instant, or
  // the epoch if none exists yet.
  if (!now.IsFinite()) {
    now = last_issued_.IsFinite() ? last_issued_ : Chronon::Epoch();
  }
  // Monotonic clamp: transaction time never runs backwards even if the
  // clock does (NTP step, DST, a rewound ManualClock).
  if (last_issued_.IsFinite() && now < last_issued_) {
    now = last_issued_;
  }
  return now;
}

Result<Transaction*> TxnManager::Begin() {
  if (active_ != nullptr && active_->IsActive()) {
    return Status::FailedPrecondition(
        "a transaction is already active; temporadb transactions are "
        "serialized");
  }
  Chronon now = MonotoneNow();
  last_issued_ = now;
  active_ = std::make_unique<Transaction>(next_id_++, now);
  return active_.get();
}

Status TxnManager::Commit(Transaction* txn) {
  if (txn == nullptr || txn != active_.get()) {
    return Status::InvalidArgument("commit of a non-active transaction");
  }
  if (!txn->IsActive()) {
    return Status::FailedPrecondition("transaction is not active");
  }
  txn->MarkCommitted();
  last_commit_ = txn->timestamp();
  ++committed_count_;
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  if (txn == nullptr || txn != active_.get()) {
    return Status::InvalidArgument("abort of a non-active transaction");
  }
  if (!txn->IsActive()) {
    return Status::FailedPrecondition("transaction is not active");
  }
  txn->RunUndoAndMarkAborted();
  ++aborted_count_;
  return Status::OK();
}

Chronon TxnManager::Now() const { return MonotoneNow(); }

}  // namespace temporadb
