#ifndef TEMPORADB_TXN_CLOCK_H_
#define TEMPORADB_TXN_CLOCK_H_

#include <memory>

#include "common/chronon.h"
#include "common/date.h"
#include "common/result.h"

namespace temporadb {

/// The source of transaction time.
///
/// The paper's defining property of transaction time is that it is generated
/// by "a non-stop running clock" outside user control (§2.2): users *cannot*
/// choose it, which is what makes rollback states trustworthy.  temporadb
/// keeps the clock behind an interface so that
///  - production code uses `SystemClock` (the wall calendar), while
///  - tests and the paper-scenario driver use `ManualClock` to replay the
///    1977-1984 transaction dates of Figures 4 and 8 exactly.
/// Note the asymmetry with valid time, which is always user-supplied.
class Clock {
 public:
  virtual ~Clock() = default;

  /// The current chronon (today, at day granularity).
  virtual Chronon Now() const = 0;
};

/// Wall-clock time via `time(2)`, truncated to days.
class SystemClock : public Clock {
 public:
  Chronon Now() const override;
};

/// A test clock that moves only when told to.  Moving backwards is allowed
/// at this level; the transaction manager enforces monotonicity where it
/// matters.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Chronon start = Chronon::Epoch()) : now_(start) {}

  Chronon Now() const override { return now_; }

  void SetTime(Chronon t) { now_ = t; }
  /// Convenience: set from a date literal like "12/15/82".
  Status SetDate(std::string_view text);
  void AdvanceDays(int64_t days) { now_ = now_ + days; }

 private:
  Chronon now_;
};

}  // namespace temporadb

#endif  // TEMPORADB_TXN_CLOCK_H_
