#ifndef TEMPORADB_TXN_TRANSACTION_H_
#define TEMPORADB_TXN_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/chronon.h"
#include "common/result.h"

namespace temporadb {

using TxnId = uint64_t;

enum class TxnState {
  kActive,
  kCommitted,
  kAborted,
};

std::string_view TxnStateName(TxnState s);

/// A unit of atomic work against the database.
///
/// Each transaction carries the *transaction timestamp* — the chronon that
/// will stamp every version it creates or closes.  Per the paper (§4.2), a
/// transaction against a rollback or temporal relation "results in a new
/// static [historical] state being appended"; atomicity means either the
/// whole new state appears or none of it, which the undo log guarantees
/// under abort.
///
/// Concurrency note: temporadb executes transactions one at a time (the
/// embedded-library model); the manager hands out strictly serialized
/// timestamps, so transaction-time order *is* serialization order.
class Transaction {
 public:
  Transaction(TxnId id, Chronon timestamp) : id_(id), timestamp_(timestamp) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }

  /// The chronon stamped as transaction-time start (and end, for versions
  /// this transaction closes).
  Chronon timestamp() const { return timestamp_; }

  TxnState state() const { return state_; }
  bool IsActive() const { return state_ == TxnState::kActive; }

  /// Registers a compensating action, run (in reverse order) on abort.
  void PushUndo(std::function<void()> undo);

  /// Number of undo entries (i.e. mutations performed so far).
  size_t mutation_count() const { return undo_log_.size(); }

 private:
  friend class TxnManager;

  void MarkCommitted() {
    state_ = TxnState::kCommitted;
    undo_log_.clear();
  }
  void RunUndoAndMarkAborted();

  TxnId id_;
  Chronon timestamp_;
  TxnState state_ = TxnState::kActive;
  std::vector<std::function<void()>> undo_log_;
};

}  // namespace temporadb

#endif  // TEMPORADB_TXN_TRANSACTION_H_
