#ifndef TEMPORADB_WORKLOAD_DRIVER_H_
#define TEMPORADB_WORKLOAD_DRIVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "temporal/partition.h"
#include "workload/generator.h"

namespace temporadb {
namespace workload {

/// Shape of a mixed-phase differential run.
struct DriverOptions {
  WorkloadOptions gen;

  /// Store shape of the primary (system under test): partition size, batch
  /// execution, time indexes.  The shadow always runs the naive arm —
  /// unpartitioned, row-at-a-time, serial.
  VersionStoreOptions store;

  /// DML ops between oracle sync points.
  size_t sync_every = 600;

  /// Concurrent snapshot readers during each write segment (0 disables the
  /// mixed phase; the oracle still runs).
  size_t reader_threads = 2;

  /// The writer does not tear a segment down until every reader completed
  /// at least this many pins against it — guarantees genuinely concurrent
  /// reads during sustained writes, without sleeps.
  size_t reader_min_pins = 2;

  /// Oracle queries per query class per sync point.
  size_t queries_per_class = 4;

  /// N in the {1, N}-thread leg of the verification matrix.
  size_t verify_threads = 4;

  /// Full coalesced-content equivalence against the shadow every k-th sync
  /// point (and always once at the end).
  size_t deep_check_every = 2;
};

struct LatencySummary {
  uint64_t count = 0;
  double qps = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

struct WorkloadReport {
  // Write side.
  uint64_t ops_applied = 0;         ///< DDL + seed + DML, all acked.
  double write_ops_per_sec = 0;     ///< Primary-engine statement throughput.
  uint64_t ops_digest = kDigestSeed;  ///< FNV-1a over the committed stream.

  // Read side (concurrent snapshot readers, per query class).
  uint64_t reader_pins = 0;
  uint64_t reader_queries = 0;
  std::map<std::string, LatencySummary> latency;

  // Oracle.
  uint64_t sync_points = 0;
  uint64_t oracle_queries = 0;        ///< Distinct (query, sync) pairs.
  uint64_t oracle_paths_checked = 0;  ///< Query × execution-path compares.
  uint64_t deep_checks = 0;
  bool stats_identity_ok = true;
  uint64_t mismatches = 0;
  std::vector<std::string> mismatch_samples;  ///< First few, for diagnosis.

  // ScanStats totals over the whole run (reader + verification scans).
  uint64_t parts_considered = 0;
  uint64_t parts_pruned_tt = 0;
  uint64_t parts_pruned_vt = 0;
  uint64_t parts_pruned_snapshot = 0;
  uint64_t parts_scanned = 0;
  uint64_t rows_scanned = 0;

  double elapsed_ms = 0;
};

/// The mixed-phase workload driver: one serialized writer applying the
/// generator's stream to the primary *and* to an in-memory shadow history
/// (the naive arm), while `reader_threads` concurrent snapshot readers
/// issue audit sweeps, timeslice stabs, and when-joins through the MVCC
/// pin path.  At every sync point the readers are quiesced and each query
/// class is replayed against the shadow, demanding bit-identical rowsets
/// across {row, batch} × {1, N} threads × the snapshot path; periodically
/// the entire coalesced bitemporal content is compared.  Single-use: one
/// `Run()` per driver.
class WorkloadDriver {
 public:
  explicit WorkloadDriver(const DriverOptions& options);
  ~WorkloadDriver();

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  /// Runs the whole workload.  Returns the first hard failure (a statement
  /// the engine rejected); result divergences are *not* hard failures —
  /// they are counted in `report().mismatches` with samples.
  Status Run();

  const WorkloadReport& report() const { return report_; }

 private:
  struct ReaderStats;

  Status Setup();
  Status ApplyBoth(const WorkloadOp& op);
  Status FlushFenced();
  Status RunSegment(size_t n_ops, size_t segment);
  void ReaderLoop(size_t id, size_t segment, int64_t horizon,
                  const std::atomic<bool>* stop, std::atomic<uint64_t>* pins,
                  ReaderStats* out);
  void VerifySync(size_t sync_idx);
  void DeepCheck(const std::string& where);
  void CheckStatsIdentity(const std::string& where);
  void ConfigurePrimary(bool batch_exec, size_t threads);
  void ComparePath(const std::string& query, const Result<Rowset>& want,
                   const Result<Rowset>& got, const std::string& path);
  void Mismatch(const std::string& what);
  void FinalizeReport(double elapsed_ms, double reader_seconds);

  DriverOptions options_;
  WorkloadGenerator gen_;
  std::unique_ptr<ManualClock> clock_;
  std::unique_ptr<ManualClock> shadow_clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Database> shadow_;
  std::unique_ptr<exec::ThreadPool> pool_;
  ScanStats stats_;
  /// Fenced ops (in-place corrections on the relations without transaction
  /// time) buffered during the concurrent phase, applied — to primary and
  /// shadow alike — in the quiesced maintenance window before each sync
  /// verification.  See WorkloadOp::fenced.
  std::vector<WorkloadOp> pending_fenced_;
  WorkloadReport report_;
  double primary_write_seconds_ = 0;
  double reader_seconds_ = 0;
  std::map<std::string, std::vector<double>> class_latency_us_;
};

}  // namespace workload
}  // namespace temporadb

#endif  // TEMPORADB_WORKLOAD_DRIVER_H_
