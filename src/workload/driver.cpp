#include "workload/driver.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "tests/shadow_history.h"

namespace temporadb {
namespace workload {
namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) +
                                   0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

/// Per-reader-thread scratch: owned exclusively by its thread until join,
/// merged by the writer afterwards.  Pins are the one cross-thread signal
/// (the writer spin-waits on them), so they live in a separate atomic.
struct WorkloadDriver::ReaderStats {
  std::map<std::string, std::vector<double>> latency_us;
  uint64_t queries = 0;
  std::vector<std::string> errors;
};

WorkloadDriver::WorkloadDriver(const DriverOptions& options)
    : options_(options), gen_(options.gen) {}

WorkloadDriver::~WorkloadDriver() = default;

Status WorkloadDriver::Setup() {
  clock_ = std::make_unique<ManualClock>();
  shadow_clock_ = std::make_unique<ManualClock>();

  DatabaseOptions primary;
  primary.clock = clock_.get();
  primary.store_options = options_.store;
  Result<std::unique_ptr<Database>> db = Database::Open(primary);
  if (!db.ok()) return db.status();
  db_ = std::move(*db);

  // The shadow is the naive arm: unpartitioned, row-at-a-time, serial.
  // It shares the attribute indexes (created by the workload DDL), so the
  // DML where-clause probes stay cheap on both sides at full scale.
  DatabaseOptions naive;
  naive.clock = shadow_clock_.get();
  naive.store_options.partition_rows = 0;
  naive.store_options.batch_exec = false;
  Result<std::unique_ptr<Database>> sh = Database::Open(naive);
  if (!sh.ok()) return sh.status();
  shadow_ = std::move(*sh);

  const size_t threads =
      options_.verify_threads > 1 ? options_.verify_threads : 2;
  pool_ = std::make_unique<exec::ThreadPool>(threads);

  for (const WorkloadOp& op : WorkloadDdl(options_.gen)) {
    TDB_RETURN_IF_ERROR(ApplyBoth(op));
  }
  for (const WorkloadOp& op : gen_.SeedOps()) {
    TDB_RETURN_IF_ERROR(ApplyBoth(op));
  }
  // Install the stats sink after DDL, before any reader exists (the sink
  // pointer is a store option: writer-side, quiesced writes only).
  for (const RelationInfo& info : db_->ListRelations()) {
    Result<StoredRelation*> rel = db_->GetRelation(info.name);
    if (rel.ok()) (*rel)->store()->set_scan_stats(&stats_);
  }
  return Status::OK();
}

Status WorkloadDriver::ApplyBoth(const WorkloadOp& op) {
  clock_->SetTime(Chronon(op.day));
  const SteadyClock::time_point t0 = SteadyClock::now();
  Result<tquel::ExecResult> r = db_->Execute(op.stmt);
  primary_write_seconds_ += SecondsSince(t0);
  if (!r.ok()) {
    return Status::Internal("primary rejected [" + op.stmt +
                            "]: " + r.status().ToString());
  }
  shadow_clock_->SetTime(Chronon(op.day));
  Result<tquel::ExecResult> rs = shadow_->Execute(op.stmt);
  if (!rs.ok()) {
    return Status::Internal("shadow rejected [" + op.stmt +
                            "]: " + rs.status().ToString());
  }
  ++report_.ops_applied;
  report_.ops_digest = DigestOp(report_.ops_digest, op);
  return Status::OK();
}

Status WorkloadDriver::FlushFenced() {
  // Readers are joined and no verification pin exists yet: the correction
  // path is open.  Primary and shadow apply the buffered ops in the same
  // order, so the differential — and the stream digest, a pure function of
  // (stream, sync_every) — are unaffected by the deferral.
  for (const WorkloadOp& op : pending_fenced_) {
    TDB_RETURN_IF_ERROR(ApplyBoth(op));
  }
  pending_fenced_.clear();
  return Status::OK();
}

void WorkloadDriver::ReaderLoop(size_t id, size_t segment, int64_t horizon,
                                const std::atomic<bool>* stop,
                                std::atomic<uint64_t>* pins,
                                ReaderStats* out) {
  // Per-reader deterministic query stream; the *interleaving* with the
  // writer is scheduling-dependent, the queries themselves are not.
  Random rng(options_.gen.seed ^
             (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(id + 1)) ^
             (0xBF58476D1CE4E5B9ULL * static_cast<uint64_t>(segment + 1)));
  size_t cursor = id;
  while (!stop->load(std::memory_order_relaxed)) {
    Result<ReadSnapshot> snap = db_->BeginReadSnapshot();
    if (!snap.ok()) {
      out->errors.push_back("pin failed: " + snap.status().ToString());
      return;
    }
    pins->fetch_add(1, std::memory_order_relaxed);
    for (int q = 0; q < 3; ++q) {
      const QueryClass cls = kQueryClasses[cursor++ % 3];
      const std::string query = MakeQuery(cls, &rng, options_.gen, horizon);
      const SteadyClock::time_point t0 = SteadyClock::now();
      Result<Rowset> r = db_->QueryAtSnapshot(*snap, query);
      const double us = SecondsSince(t0) * 1e6;
      if (!r.ok()) {
        out->errors.push_back("reader query failed [" + query +
                              "]: " + r.status().ToString());
        continue;
      }
      out->latency_us[QueryClassName(cls)].push_back(us);
      ++out->queries;
      if (q == 0) {
        // Pin stability: the same pin must answer identically while the
        // writer keeps committing underneath it.
        Result<Rowset> again = db_->QueryAtSnapshot(*snap, query);
        if (!again.ok() || !Rowset::SameContent(*r, *again)) {
          out->errors.push_back("pin instability [" + query + "]");
        }
      }
      if (stop->load(std::memory_order_relaxed)) break;
    }
  }
}

Status WorkloadDriver::RunSegment(size_t n_ops, size_t segment) {
  const size_t nr = options_.reader_threads;
  std::atomic<bool> stop{false};
  std::vector<ReaderStats> stats(nr);
  std::unique_ptr<std::atomic<uint64_t>[]> pins;
  std::vector<std::thread> readers;
  readers.reserve(nr);
  // Anchor reader queries inside the history that already exists — their
  // results vary with the snapshot they pin, but never probe past data the
  // segment has not yet committed on entry.
  const int64_t horizon = gen_.day();
  const SteadyClock::time_point seg_t0 = SteadyClock::now();
  if (nr > 0) {
    pins.reset(new std::atomic<uint64_t>[nr]);
    // Relaxed: initialization before the spawn below; thread creation
    // publishes it to the readers.
    for (size_t i = 0; i < nr; ++i) {
      pins[i].store(0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < nr; ++i) {
      readers.emplace_back([this, i, segment, horizon, &stop, &pins,
                            &stats] {
        ReaderLoop(i, segment, horizon, &stop, &pins[i], &stats[i]);
      });
    }
  }

  Status st = Status::OK();
  size_t applied = 0;
  WorkloadOp op;
  while (applied < n_ops && gen_.Next(&op)) {
    if (op.fenced) {
      // In-place corrections are excluded while snapshots are pinned
      // (MvccState::BeginCorrection fails fast): defer to the quiesced
      // maintenance window at the next sync point.
      pending_fenced_.push_back(op);
    } else {
      st = ApplyBoth(op);
      if (!st.ok()) break;
    }
    ++applied;
  }
  if (st.ok()) {
    // Sustained-writes guarantee: every reader saw the segment through at
    // least `reader_min_pins` distinct pins before teardown.
    for (size_t i = 0; i < nr; ++i) {
      while (pins[i].load(std::memory_order_relaxed) <
             options_.reader_min_pins) {
        std::this_thread::yield();
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  reader_seconds_ += SecondsSince(seg_t0);

  for (size_t i = 0; i < nr; ++i) {
    report_.reader_pins += pins[i].load(std::memory_order_relaxed);
    report_.reader_queries += stats[i].queries;
    for (auto& [cls, lat] : stats[i].latency_us) {
      std::vector<double>& sink = class_latency_us_[cls];
      sink.insert(sink.end(), lat.begin(), lat.end());
    }
    for (const std::string& err : stats[i].errors) Mismatch(err);
  }
  return st;
}

void WorkloadDriver::ConfigurePrimary(bool batch_exec, size_t threads) {
  for (const RelationInfo& info : db_->ListRelations()) {
    Result<StoredRelation*> rel = db_->GetRelation(info.name);
    if (!rel.ok()) continue;
    VersionStore* store = (*rel)->store();
    store->ConfigureBatchExec(batch_exec, options_.store.batch_rows);
    store->ConfigureParallel(threads > 1 ? pool_.get() : nullptr, 1);
  }
}

void WorkloadDriver::ComparePath(const std::string& query,
                                 const Result<Rowset>& want,
                                 const Result<Rowset>& got,
                                 const std::string& path) {
  ++report_.oracle_paths_checked;
  if (want.ok() != got.ok()) {
    Mismatch("status diverges on " + path + " [" + query + "]: shadow " +
             (want.ok() ? "ok" : want.status().ToString()) + " vs primary " +
             (got.ok() ? "ok" : got.status().ToString()));
    return;
  }
  if (want.ok() && !Rowset::SameContent(*want, *got)) {
    Mismatch("content diverges on " + path + " [" + query + "]");
  }
}

void WorkloadDriver::Mismatch(const std::string& what) {
  ++report_.mismatches;
  if (report_.mismatch_samples.size() < 8) {
    report_.mismatch_samples.push_back(what);
  }
}

void WorkloadDriver::CheckStatsIdentity(const std::string& where) {
  const uint64_t considered = stats_.considered();
  const uint64_t pruned =
      stats_.pruned_tt() + stats_.pruned_vt() + stats_.pruned_snapshot();
  const uint64_t scanned = stats_.scanned();
  if (considered != pruned + scanned) {
    report_.stats_identity_ok = false;
    Mismatch("ScanStats identity broken at " + where + ": considered " +
             std::to_string(considered) + " != pruned " +
             std::to_string(pruned) + " + scanned " + std::to_string(scanned));
  }
}

void WorkloadDriver::DeepCheck(const std::string& where) {
  ++report_.deep_checks;
  std::string diff;
  if (!testutil::EquivalentDatabases(db_.get(), shadow_.get(), &diff)) {
    Mismatch("deep equivalence failed at " + where + ": " + diff);
  }
}

void WorkloadDriver::VerifySync(size_t sync_idx) {
  ++report_.sync_points;
  // The accounting identity must hold at *every* sync point, over
  // everything scanned so far (reader snapshot sweeps included).
  CheckStatsIdentity("sync " + std::to_string(sync_idx));

  Random rng(options_.gen.seed * 0x2545F4914F6CDD1DULL +
             static_cast<uint64_t>(sync_idx));
  const int64_t horizon = gen_.day();
  const size_t n_threads =
      options_.verify_threads > 1 ? options_.verify_threads : 2;
  for (QueryClass cls : kQueryClasses) {
    for (size_t k = 0; k < options_.queries_per_class; ++k) {
      const std::string query = MakeQuery(cls, &rng, options_.gen, horizon);
      ++report_.oracle_queries;
      const Result<Rowset> want = shadow_->Query(query);
      for (const bool batch : {false, true}) {
        for (const size_t threads : {size_t{1}, n_threads}) {
          ConfigurePrimary(batch, threads);
          ComparePath(query, want, db_->Query(query),
                      std::string(batch ? "batch" : "row") + "/t" +
                          std::to_string(threads));
        }
      }
      // Snapshot path: a fresh pin over the quiesced writer must equal the
      // direct query (and the shadow).
      ConfigurePrimary(options_.store.batch_exec, 1);
      Result<ReadSnapshot> snap = db_->BeginReadSnapshot();
      if (!snap.ok()) {
        Mismatch("sync pin failed: " + snap.status().ToString());
      } else {
        ComparePath(query, want, db_->QueryAtSnapshot(*snap, query),
                    "snapshot");
      }
    }
  }
  ConfigurePrimary(options_.store.batch_exec, 1);
  if (options_.deep_check_every > 0 &&
      sync_idx % options_.deep_check_every == 0) {
    DeepCheck("sync " + std::to_string(sync_idx));
  }
}

void WorkloadDriver::FinalizeReport(double elapsed_ms, double reader_seconds) {
  report_.elapsed_ms = elapsed_ms;
  report_.write_ops_per_sec =
      primary_write_seconds_ > 0
          ? static_cast<double>(report_.ops_applied) / primary_write_seconds_
          : 0;
  for (auto& [cls, lat] : class_latency_us_) {
    std::sort(lat.begin(), lat.end());
    LatencySummary s;
    s.count = lat.size();
    s.qps = reader_seconds > 0
                ? static_cast<double>(lat.size()) / reader_seconds
                : 0;
    s.p50_us = Percentile(lat, 0.50);
    s.p95_us = Percentile(lat, 0.95);
    s.p99_us = Percentile(lat, 0.99);
    report_.latency[cls] = s;
  }
  report_.parts_considered = stats_.considered();
  report_.parts_pruned_tt = stats_.pruned_tt();
  report_.parts_pruned_vt = stats_.pruned_vt();
  report_.parts_pruned_snapshot = stats_.pruned_snapshot();
  report_.parts_scanned = stats_.scanned();
  report_.rows_scanned = stats_.rows();
}

Status WorkloadDriver::Run() {
  const SteadyClock::time_point t0 = SteadyClock::now();
  TDB_RETURN_IF_ERROR(Setup());
  size_t remaining = options_.gen.ops;
  size_t sync_idx = 0;
  const size_t sync_every = options_.sync_every > 0 ? options_.sync_every : 1;
  while (remaining > 0) {
    const size_t n = remaining < sync_every ? remaining : sync_every;
    TDB_RETURN_IF_ERROR(RunSegment(n, sync_idx));
    TDB_RETURN_IF_ERROR(FlushFenced());
    remaining -= n;
    ++sync_idx;
    VerifySync(sync_idx);
  }
  TDB_RETURN_IF_ERROR(FlushFenced());
  DeepCheck("final");
  CheckStatsIdentity("final");
  FinalizeReport(SecondsSince(t0) * 1e3, reader_seconds_);
  return Status::OK();
}

}  // namespace workload
}  // namespace temporadb
