#include "workload/generator.h"

#include "common/chronon.h"
#include "common/date.h"

namespace temporadb {
namespace workload {
namespace {

// std::string{} first operands: the const char* overload of operator+
// trips GCC 12's -Wrestrict false positive (GCC PR105329) under -Werror.
std::string DayLit(int64_t day) {
  return std::string("\"") + Date(Chronon(day)).ToString() + "\"";
}

std::string IntLit(uint64_t v) { return std::to_string(v); }

std::string StrLit(const std::string& s) {
  return std::string("\"") + s + "\"";
}

std::string DeptName(size_t i) { return std::string("d") + std::to_string(i); }

std::string HeadName(uint64_t i) { return std::string("h") + std::to_string(i); }

// A valid clause `valid from "<from>" to "<to|inf>"`.
std::string ValidClause(int64_t from, int64_t to_or_negative_for_inf) {
  std::string out = " valid from " + DayLit(from) + " to ";
  out += to_or_negative_for_inf < 0 ? "\"inf\"" : DayLit(to_or_negative_for_inf);
  return out;
}

int64_t Anchor(Random* rng, const WorkloadOptions& opts, int64_t max_day) {
  if (max_day <= opts.start_day) return opts.start_day;
  return opts.start_day +
         static_cast<int64_t>(
             rng->Uniform(static_cast<uint64_t>(max_day - opts.start_day + 1)));
}

}  // namespace

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kAudit:
      return "audit";
    case QueryClass::kStab:
      return "stab";
    case QueryClass::kWhenJoin:
      return "when_join";
  }
  return "unknown";
}

std::vector<WorkloadOp> WorkloadDdl(const WorkloadOptions& opts) {
  const int64_t day = opts.start_day;
  std::vector<WorkloadOp> ops;
  ops.push_back(
      {day, "create static relation departments (dept = string, head = string)"});
  ops.push_back(
      {day, "create rollback relation headcount (dept = string, n = int)"});
  ops.push_back(
      {day, "create historical relation assignments (emp = int, dept = string)"});
  ops.push_back(
      {day, "create temporal relation salaries (emp = int, amount = int)"});
  ops.push_back({day, "create index on departments (dept)"});
  ops.push_back({day, "create index on headcount (dept)"});
  ops.push_back({day, "create index on assignments (emp)"});
  ops.push_back({day, "create index on salaries (emp)"});
  ops.push_back({day, "range of d is departments"});
  ops.push_back({day, "range of hc is headcount"});
  ops.push_back({day, "range of a is assignments"});
  ops.push_back({day, "range of s is salaries"});
  return ops;
}

uint64_t DigestOp(uint64_t h, const WorkloadOp& op) {
  const auto mix = [&h](const unsigned char* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  unsigned char day_bytes[8];
  uint64_t day = static_cast<uint64_t>(op.day);
  for (size_t i = 0; i < 8; ++i) {
    day_bytes[i] = static_cast<unsigned char>(day >> (8 * i));
  }
  mix(day_bytes, sizeof(day_bytes));
  mix(reinterpret_cast<const unsigned char*>(op.stmt.data()), op.stmt.size());
  return h;
}

std::string MakeQuery(QueryClass cls, Random* rng, const WorkloadOptions& opts,
                      int64_t max_day) {
  switch (cls) {
    case QueryClass::kAudit: {
      // Audit sweep: the database state as it was *recorded* at the anchor
      // day — what did we believe then?  Rollback and temporal relations
      // carry transaction time, so they take `as of`.
      const int64_t as_of = Anchor(rng, opts, max_day);
      switch (rng->Uniform(3)) {
        case 0:
          return "retrieve (hc.dept, hc.n) as of " + DayLit(as_of);
        case 1:
          return "retrieve (s.emp, s.amount) as of " + DayLit(as_of);
        default:
          return "retrieve (s.emp, s.amount) where s.amount < " +
                 IntLit(40000 + rng->Uniform(100000)) + " as of " +
                 DayLit(as_of);
      }
    }
    case QueryClass::kStab: {
      // Valid-timeslice stab: who held what on the anchor day (in
      // reality), per the current — or an audited — transaction state.
      const int64_t at = Anchor(rng, opts, max_day);
      switch (rng->Uniform(3)) {
        case 0:
          return "retrieve (s.emp, s.amount) when s overlap " + DayLit(at);
        case 1:
          return "retrieve (a.emp, a.dept) when a overlap " + DayLit(at);
        default: {
          const int64_t as_of = Anchor(rng, opts, max_day);
          return "retrieve (s.emp, s.amount) when s overlap " + DayLit(at) +
                 " as of " + DayLit(as_of);
        }
      }
    }
    case QueryClass::kWhenJoin: {
      // Long-range when-join: salary spans joined to the assignment spans
      // they overlap, over a random employee band.  Most bands land in
      // the cold Zipf tail; bands near rank 0 pair the hottest keys'
      // whole histories against each other and form the latency tail.
      // No `as of`: the historical participant has no transaction time.
      const uint64_t span = opts.employees / 16 > 8 ? opts.employees / 16 : 8;
      const uint64_t lo = rng->Uniform(opts.employees);
      const uint64_t hi = lo + 1 + rng->Uniform(span);
      std::string q = "retrieve (s.emp, s.amount, a.dept) where s.emp = a.emp";
      q += " and s.emp >= " + IntLit(lo);
      q += " and s.emp < " + IntLit(hi);
      q += " when s overlap a";
      return q;
    }
  }
  return "retrieve (s.emp)";
}

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& opts)
    : opts_(opts),
      rng_(opts.seed),
      emp_zipf_(opts.employees > 0 ? opts.employees : 1, opts.zipf_theta),
      day_(opts.start_day) {}

std::vector<WorkloadOp> WorkloadGenerator::SeedOps() {
  std::vector<WorkloadOp> ops;
  ops.reserve(2 * opts_.departments + 2 * opts_.employees);
  for (size_t i = 0; i < opts_.departments; ++i) {
    ops.push_back({day_, "append to departments (dept = " +
                             StrLit(DeptName(i)) + ", head = " +
                             StrLit(HeadName(rng_.Uniform(1000))) + ")"});
  }
  const uint64_t per_dept =
      opts_.departments > 0 ? opts_.employees / opts_.departments : 0;
  for (size_t i = 0; i < opts_.departments; ++i) {
    ops.push_back({day_, "append to headcount (dept = " + StrLit(DeptName(i)) +
                             ", n = " + IntLit(per_dept) + ")"});
  }
  for (size_t e = 0; e < opts_.employees; ++e) {
    // Advance the clock a little as the corpus loads, so even the seed
    // spans several transaction-time epochs.
    if (e % 64 == 63) ++day_;
    const uint64_t amount = 30000 + rng_.Uniform(120000);
    ops.push_back({day_, "append to salaries (emp = " + IntLit(e) +
                             ", amount = " + IntLit(amount) + ")" +
                             ValidClause(day_, -1)});
    const size_t dept = opts_.departments > 0 ? e % opts_.departments : 0;
    ops.push_back({day_, "append to assignments (emp = " + IntLit(e) +
                             ", dept = " + StrLit(DeptName(dept)) + ")" +
                             ValidClause(day_, -1)});
  }
  return ops;
}

bool WorkloadGenerator::Next(WorkloadOp* op) {
  if (emitted_ >= opts_.ops) return false;
  ++emitted_;
  day_ += static_cast<int64_t>(rng_.Uniform(2));  // 0..1: dense timeline.
  const uint64_t r = rng_.Uniform(100);
  if (r < 55) {
    *op = SalariesOp();
  } else if (r < 80) {
    *op = AssignmentsOp();
  } else if (r < 92) {
    *op = HeadcountOp();
  } else {
    *op = DepartmentsOp();
  }
  return true;
}

WorkloadOp WorkloadGenerator::SalariesOp() {
  const uint64_t emp = emp_zipf_.Sample(&rng_);
  const uint64_t amount = 30000 + rng_.Uniform(120000);
  const std::string who = " where s.emp = " + IntLit(emp);
  const uint64_t sub = rng_.Uniform(100);
  std::string stmt;
  if (sub < opts_.retro_percent) {
    // Retroactive correction: payroll re-states a window months to years
    // in the past.  The transaction-time history keeps what was believed
    // before; `as of` audits must still see it.
    const int64_t from = day_ - 180 - static_cast<int64_t>(rng_.Uniform(900));
    const int64_t to = from + 30 + static_cast<int64_t>(rng_.Uniform(300));
    stmt = "replace s (amount = " + IntLit(amount) + ")" +
           ValidClause(from, to) + who;
  } else if (sub < opts_.retro_percent + opts_.delete_percent) {
    // Termination (from a recent day onward) or a retroactive carve-out.
    const int64_t from = day_ - static_cast<int64_t>(rng_.Uniform(365));
    const int64_t to = rng_.OneIn(2)
                           ? -1
                           : from + 1 + static_cast<int64_t>(rng_.Uniform(120));
    stmt = "delete s" + ValidClause(from, to) + who;
  } else if (sub < opts_.retro_percent + opts_.delete_percent + 12ULL) {
    // (Re-)hire: a fresh salary row, sometimes bounded (a fixed-term
    // contract), sometimes open-ended.
    const int64_t from = day_ - static_cast<int64_t>(rng_.Uniform(10));
    const int64_t to = rng_.OneIn(3)
                           ? -1
                           : from + 1 + static_cast<int64_t>(rng_.Uniform(400));
    stmt = "append to salaries (emp = " + IntLit(emp) + ", amount = " +
           IntLit(amount) + ")" + ValidClause(from, to);
  } else {
    // The common case: a raise effective (roughly) now, onward.
    const int64_t from = day_ - static_cast<int64_t>(rng_.Uniform(10));
    stmt = "replace s (amount = " + IntLit(amount) + ")" +
           ValidClause(from, -1) + who;
  }
  return {day_, stmt};
}

WorkloadOp WorkloadGenerator::AssignmentsOp() {
  const uint64_t emp = emp_zipf_.Sample(&rng_);
  const std::string dept =
      StrLit(DeptName(rng_.Uniform(opts_.departments > 0 ? opts_.departments : 1)));
  const std::string who = " where a.emp = " + IntLit(emp);
  const uint64_t sub = rng_.Uniform(100);
  std::string stmt;
  if (sub < 2ULL * opts_.retro_percent) {
    // Backdated transfer: HR records the move months after the fact.
    const int64_t from = day_ - 90 - static_cast<int64_t>(rng_.Uniform(540));
    const int64_t to = from + 30 + static_cast<int64_t>(rng_.Uniform(180));
    stmt = "replace a (dept = " + dept + ")" + ValidClause(from, to) + who;
  } else if (sub < 2ULL * opts_.retro_percent + opts_.delete_percent) {
    const int64_t from = day_ - static_cast<int64_t>(rng_.Uniform(180));
    const int64_t to = rng_.OneIn(2)
                           ? -1
                           : from + 1 + static_cast<int64_t>(rng_.Uniform(90));
    stmt = "delete a" + ValidClause(from, to) + who;
  } else if (rng_.OneIn(5)) {
    // A secondary (concurrent) assignment span.
    const int64_t from = day_ - static_cast<int64_t>(rng_.Uniform(10));
    const int64_t to = from + 1 + static_cast<int64_t>(rng_.Uniform(240));
    stmt = "append to assignments (emp = " + IntLit(emp) + ", dept = " + dept +
           ")" + ValidClause(from, to);
  } else {
    // Transfer effective now, onward.
    const int64_t from = day_ - static_cast<int64_t>(rng_.Uniform(5));
    stmt = "replace a (dept = " + dept + ")" + ValidClause(from, -1) + who;
  }
  // Historical DML is an in-place correction: fenced (appends ride along so
  // the relation's op order survives deferral).
  return {day_, stmt, /*fenced=*/true};
}

WorkloadOp WorkloadGenerator::HeadcountOp() {
  const std::string dept =
      StrLit(DeptName(rng_.Uniform(opts_.departments > 0 ? opts_.departments : 1)));
  const uint64_t n = rng_.Uniform(500);
  const uint64_t sub = rng_.Uniform(100);
  std::string stmt;
  if (sub < 8) {
    // Reorg: the department's headcount row disappears (and the rollback
    // history remembers that it once existed).
    stmt = "delete hc where hc.dept = " + dept;
  } else if (sub < 16) {
    stmt = "append to headcount (dept = " + dept + ", n = " + IntLit(n) + ")";
  } else {
    stmt = "replace hc (n = " + IntLit(n) + ") where hc.dept = " + dept;
  }
  return {day_, stmt};
}

WorkloadOp WorkloadGenerator::DepartmentsOp() {
  const std::string dept =
      StrLit(DeptName(rng_.Uniform(opts_.departments > 0 ? opts_.departments : 1)));
  const std::string head = StrLit(HeadName(rng_.Uniform(1000)));
  return {day_, "replace d (head = " + head + ") where d.dept = " + dept,
          /*fenced=*/true};
}

}  // namespace workload
}  // namespace temporadb
