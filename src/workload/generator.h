#ifndef TEMPORADB_WORKLOAD_GENERATOR_H_
#define TEMPORADB_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace temporadb {
namespace workload {

/// Shape of the HR/payroll corpus: a seeded, deterministic bitemporal
/// update stream over a schema spanning all four relation kinds of the
/// taxonomy —
///
///   departments (static)      dept, head        — plain updates
///   headcount   (rollback)    dept, n           — updates + `as of` audits
///   assignments (historical)  emp, dept         — valid-time rewrites
///   salaries    (temporal)    emp, amount       — the full bitemporal mix
///
/// Employee keys are Zipf-skewed (a hot minority takes most raises), a
/// configurable share of writes are *retroactive* valid-time corrections
/// (the payroll office re-states a window months in the past), and a share
/// are logical deletions.  The stream — DDL, seed corpus, and DML — is a
/// pure function of this struct; two generators with equal options emit
/// byte-identical statements.
struct WorkloadOptions {
  uint64_t seed = 42;
  size_t employees = 240;
  size_t departments = 12;
  size_t ops = 2400;           ///< DML ops generated after the seed corpus.
  double zipf_theta = 0.99;    ///< Employee-key skew (0 = uniform; < 1).
  uint32_t retro_percent = 18; ///< Retroactive valid-time corrections.
  uint32_t delete_percent = 8; ///< Logical deletions.
  int64_t start_day = 3650;    ///< First transaction day (~1980).
};

/// One generated operation: the transaction day it commits on and the
/// TQuel statement text.
///
/// `fenced` marks writes to the relations *without* transaction time
/// (assignments, departments): their replaces/deletes are in-place history
/// corrections, which the MVCC contract excludes while read snapshots are
/// pinned (mvcc.h).  The driver defers fenced ops to the quiesced sync
/// points — the maintenance window a production deployment would use —
/// keeping the concurrent phase to the append-only bitemporal mix.
struct WorkloadOp {
  int64_t day = 0;
  std::string stmt;
  bool fenced = false;
};

/// The three read-query classes the mixed-phase driver issues: `as of`
/// audit sweeps, valid-timeslice stabs, and salary×assignment when-joins.
enum class QueryClass { kAudit, kStab, kWhenJoin };

inline constexpr QueryClass kQueryClasses[] = {
    QueryClass::kAudit, QueryClass::kStab, QueryClass::kWhenJoin};

const char* QueryClassName(QueryClass cls);

/// Schema DDL: the four relations, their attribute indexes (so the
/// where-clause equality probes in the DML stream stay cheap at scale on
/// primary and shadow alike), and the range declarations.  All stamped
/// with `opts.start_day`.
std::vector<WorkloadOp> WorkloadDdl(const WorkloadOptions& opts);

/// Chained FNV-1a fold of one op (day bytes, then statement bytes).  The
/// determinism tests and the driver's report both fold the committed
/// stream through this; seed the chain with `kDigestSeed`.
inline constexpr uint64_t kDigestSeed = 1469598103934665603ULL;
uint64_t DigestOp(uint64_t h, const WorkloadOp& op);

/// Builds one read query of the given class, with temporal anchors drawn
/// uniformly from [opts.start_day, max_day].  Deterministic in `rng`;
/// thread-safe given a per-thread generator.
std::string MakeQuery(QueryClass cls, Random* rng, const WorkloadOptions& opts,
                      int64_t max_day);

/// Streaming generator: call `SeedOps()` once (after applying
/// `WorkloadDdl`), then drain `Next()` for the mixed DML stream.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& opts);

  /// The initial corpus: every department, its headcount row, and one
  /// open-ended salary + assignment per employee.
  std::vector<WorkloadOp> SeedOps();

  /// Produces the next DML op; false once `options().ops` were emitted.
  bool Next(WorkloadOp* op);

  /// The current transaction day — an upper bound for query anchors over
  /// the history generated so far.
  int64_t day() const { return day_; }
  const WorkloadOptions& options() const { return opts_; }

 private:
  WorkloadOp SalariesOp();
  WorkloadOp AssignmentsOp();
  WorkloadOp HeadcountOp();
  WorkloadOp DepartmentsOp();

  WorkloadOptions opts_;
  Random rng_;
  Zipf emp_zipf_;
  int64_t day_;
  size_t emitted_ = 0;
};

}  // namespace workload
}  // namespace temporadb

#endif  // TEMPORADB_WORKLOAD_GENERATOR_H_
